//! The LeapFrog-TrieJoin-style backtracking join (OutsideIn).
//!
//! The search enumerates bindings in lexicographic order of the variable
//! ordering; at each depth the participating factors' cursors leapfrog to the
//! least commonly-present value. Cursors come in two interchangeable
//! representations ([`JoinRep`]):
//!
//! * [`JoinRep::Trie`] (default) — walk the factor's columnar trie index
//!   ([`faq_factor::FactorTrie`]): each seek is one binary search over the
//!   *distinct* values of a trie level, and each descent is an O(1) offset
//!   lookup cached from the preceding seek;
//! * [`JoinRep::Listing`] — binary-search the sorted row listing directly
//!   ([`Factor::seek_column`] / [`Factor::prefix_range`]), re-scanning shared
//!   prefixes on every seek. Kept as the reference kernel and comparison
//!   baseline.
//!
//! Both produce identical output streams and identical [`JoinStats`] seek
//! counts on a full-range join (chunked runs may differ marginally at chunk
//! boundaries); only the cost per seek differs.

use faq_factor::{Domains, Factor, TrieCursor};
use faq_hypergraph::Var;
use faq_semiring::SemiringElem;
use std::borrow::Cow;

/// One input to a multiway join.
///
/// Construct through [`JoinInput::value`], [`JoinInput::filter`], or
/// [`JoinInput::prefix_filter`] — the struct is `#[non_exhaustive]`, so new
/// per-input knobs can be added without breaking downstream constructors.
#[non_exhaustive]
pub struct JoinInput<'a, E> {
    /// The factor; its schema must be a subsequence of the join's variable
    /// ordering restricted to its variables (call [`Factor::align_to`] first —
    /// [`multiway_join`] does this automatically, except for
    /// [`JoinInput::prefix_filter`] inputs, whose column order is the
    /// caller's contract).
    pub factor: &'a Factor<E>,
    /// Whether the factor's values participate in the output product.
    /// Indicator projections and guard factors set this to `false`: they
    /// filter the search but contribute the multiplicative identity.
    pub use_value: bool,
    /// `Some(k)`: only the first `k` columns of the factor participate — a
    /// *lazy indicator projection*. The cursors walk the factor's own
    /// (cached) index, never descending past depth `k`; because trie level
    /// `d < k` lists exactly the distinct length-`d+1` prefixes, this is
    /// search-for-search identical to joining a materialized prefix
    /// projection, without building one. Caller contract: `schema[..k]` must
    /// already follow the join order (a *sigma-compatible prefix*), and such
    /// inputs are never value-carrying.
    pub prefix: Option<usize>,
}

impl<'a, E> JoinInput<'a, E> {
    /// A value-carrying input.
    pub fn value(factor: &'a Factor<E>) -> Self {
        JoinInput { factor, use_value: true, prefix: None }
    }

    /// A filter-only input (indicator projection / guard).
    pub fn filter(factor: &'a Factor<E>) -> Self {
        JoinInput { factor, use_value: false, prefix: None }
    }

    /// This input's flags rebound to `factor` — the constructor for engine
    /// code that swaps an input's factor for an aligned copy of the same
    /// data while keeping its value/prefix semantics.
    pub fn rebind<'b>(&self, factor: &'b Factor<E>) -> JoinInput<'b, E> {
        JoinInput { factor, use_value: self.use_value, prefix: self.prefix }
    }
}

impl<'a, E: SemiringElem> JoinInput<'a, E> {
    /// A filter over the first `depth` columns only: the lazy replacement for
    /// `factor.indicator_projection(...)` when the kept columns are a
    /// sigma-compatible prefix of the factor's schema (see
    /// [`JoinInput::prefix`] for the exact contract).
    pub fn prefix_filter(factor: &'a Factor<E>, depth: usize) -> Self {
        assert!(
            depth >= 1 && depth <= factor.arity(),
            "prefix depth {depth} out of range for arity {}",
            factor.arity()
        );
        JoinInput { factor, use_value: false, prefix: Some(depth) }
    }
}

/// Which factor representation the join cursors walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinRep {
    /// Whole-row binary searches over the sorted listing — the reference
    /// kernel ([`Factor::seek_column`] / [`Factor::prefix_range`]).
    Listing,
    /// The columnar trie index ([`Factor::trie`]): per-level distinct-value
    /// seeks with O(1) cached descents. The default.
    #[default]
    Trie,
}

/// Counters reported by [`multiway_join`], used by the benchmark harness to
/// verify the AGM-bound shape of Theorem 5.1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Number of complete output bindings produced.
    pub matches: u64,
    /// Number of `seek` conditional queries issued to factor tries.
    pub seeks: u64,
    /// Number of search-tree nodes visited (partial bindings).
    pub nodes: u64,
}

/// Per-factor search state: a cursor over one of the two representations.
/// Columns bind in schema order, so the cursor's own depth — not a global
/// column map — tracks which column the next seek addresses.
enum Kernel<'b, E: SemiringElem> {
    /// Stack of active row ranges; one frame per bound column plus the root.
    /// The column being sought is `ranges.len() - 1`.
    Listing { factor: &'b Factor<E>, ranges: Vec<(usize, usize)> },
    /// A navigator over the factor's cached columnar trie.
    Trie(TrieCursor<'b>),
}

struct Cursor<'b, E: SemiringElem> {
    kernel: Kernel<'b, E>,
    /// The aligned factor, for value reads at full bindings.
    factor: &'b Factor<E>,
    use_value: bool,
    /// Number of leading schema columns that participate in the search:
    /// the full arity, or the depth cap of a prefix-filter input.
    eff_arity: usize,
}

impl<'b, E: SemiringElem> Cursor<'b, E> {
    fn new(
        rep: JoinRep,
        factor: &'b Factor<E>,
        restrict_root: Option<(u32, u32)>,
        use_value: bool,
        eff_arity: usize,
    ) -> Self {
        let kernel = match rep {
            JoinRep::Listing => Kernel::Listing { factor, ranges: vec![(0, factor.len())] },
            JoinRep::Trie => Kernel::Trie(match restrict_root {
                // Chunked runs hand factors constrained at the first join
                // variable a range-restricted view of their trie root.
                Some(range) => factor.trie().view(range).cursor(),
                None => TrieCursor::new(factor.trie()),
            }),
        };
        Cursor { kernel, factor, use_value, eff_arity }
    }

    /// Least value `≥ bound` in the column now being sought, or `None`.
    fn seek(&mut self, bound: u32) -> Option<u32> {
        match &mut self.kernel {
            Kernel::Listing { factor, ranges } => {
                let range = *ranges.last().expect("range stack never empty");
                factor.seek_column(range, ranges.len() - 1, bound)
            }
            Kernel::Trie(c) => c.seek(bound),
        }
    }

    /// Bind the sought column to `value` (which a preceding seek confirmed
    /// present) and descend.
    fn open(&mut self, value: u32) {
        match &mut self.kernel {
            Kernel::Listing { factor, ranges } => {
                let range = *ranges.last().expect("range stack never empty");
                let narrowed = factor.prefix_range(range, ranges.len() - 1, value);
                debug_assert!(narrowed.0 < narrowed.1, "open of an absent value");
                ranges.push(narrowed);
            }
            Kernel::Trie(c) => c.open(value),
        }
    }

    /// Undo the last `open`.
    fn up(&mut self) {
        match &mut self.kernel {
            Kernel::Listing { ranges, .. } => {
                ranges.pop();
            }
            Kernel::Trie(c) => c.up(),
        }
    }

    /// The listing row of the current full binding (every column open).
    fn row(&self) -> usize {
        match &self.kernel {
            Kernel::Listing { ranges, .. } => {
                let (lo, hi) = *ranges.last().expect("range stack never empty");
                debug_assert_eq!(hi - lo, 1, "rows are distinct");
                lo
            }
            Kernel::Trie(c) => c.row(),
        }
    }
}

/// Enumerate all assignments to `order` consistent with every input factor, in
/// lexicographic order of `order`. For each match, `on_match` receives the
/// binding and the `⊗`-product of the values of the `use_value` inputs.
///
/// Variables of `order` not constrained by any factor iterate over their full
/// domain (hence `domains`). Nullary factors act as global scalars: an empty
/// one annihilates the join.
///
/// Walks the trie representation; see [`multiway_join_rep`] to choose.
/// Returns search statistics.
pub fn multiway_join<E: SemiringElem>(
    domains: &Domains,
    order: &[Var],
    inputs: &[JoinInput<'_, E>],
    one: E,
    mul: impl FnMut(&E, &E) -> E,
    on_match: impl FnMut(&[u32], E),
) -> JoinStats {
    multiway_join_range(domains, order, inputs, (0, u32::MAX), one, mul, on_match)
}

/// [`multiway_join`] under an explicit factor representation.
pub fn multiway_join_rep<E: SemiringElem>(
    rep: JoinRep,
    domains: &Domains,
    order: &[Var],
    inputs: &[JoinInput<'_, E>],
    one: E,
    mul: impl FnMut(&E, &E) -> E,
    on_match: impl FnMut(&[u32], E),
) -> JoinStats {
    multiway_join_range_rep(rep, domains, order, inputs, (0, u32::MAX), one, mul, on_match)
}

/// [`multiway_join`] restricted to bindings whose *first* variable lies in the
/// half-open value range `first_range = [lo, hi)`.
///
/// This is the chunk kernel of the parallel InsideOut engine: value ranges
/// partitioning `Dom(order[0])` yield disjoint slices of the search tree whose
/// outputs, concatenated in range order, reproduce the unrestricted join's
/// output stream exactly (the enumeration below `order[0]` is untouched).
/// `(0, u32::MAX)` is the full join: domain values are at most
/// `u32::MAX - 1` because domain *sizes* are `u32`.
pub fn multiway_join_range<E: SemiringElem>(
    domains: &Domains,
    order: &[Var],
    inputs: &[JoinInput<'_, E>],
    first_range: (u32, u32),
    one: E,
    mul: impl FnMut(&E, &E) -> E,
    on_match: impl FnMut(&[u32], E),
) -> JoinStats {
    multiway_join_range_rep(JoinRep::Trie, domains, order, inputs, first_range, one, mul, on_match)
}

/// [`multiway_join_range`] under an explicit factor representation — the
/// shared kernel behind every other entry point.
#[allow(clippy::too_many_arguments)]
pub fn multiway_join_range_rep<E: SemiringElem>(
    rep: JoinRep,
    domains: &Domains,
    order: &[Var],
    inputs: &[JoinInput<'_, E>],
    first_range: (u32, u32),
    one: E,
    mut mul: impl FnMut(&E, &E) -> E,
    mut on_match: impl FnMut(&[u32], E),
) -> JoinStats {
    let mut stats = JoinStats::default();

    // Fold nullary factors into a constant prefix value; align the rest.
    // Aligned factors are kept alive in `aligned` so cursors (and the trie
    // indices they walk) can borrow from them. Prefix-filter inputs are
    // never realigned — their leading columns already follow the order (the
    // caller's contract), and realigning would invalidate the depth cap.
    let mut prefix = one.clone();
    let mut aligned: Vec<(Cow<'_, Factor<E>>, bool, Option<usize>)> = Vec::new();
    for inp in inputs {
        debug_assert!(inp.prefix.is_none() || !inp.use_value, "prefix filters carry no value");
        if inp.factor.arity() == 0 {
            if inp.factor.is_empty() {
                return stats; // join annihilated by a zero scalar
            }
            if inp.use_value {
                prefix = mul(&prefix, inp.factor.value(0));
            }
            continue;
        }
        if inp.factor.is_empty() {
            return stats;
        }
        let cow = match inp.prefix {
            Some(_) => Cow::Borrowed(inp.factor),
            None => inp.factor.align_to_cow(order),
        };
        aligned.push((cow, inp.use_value, inp.prefix));
    }

    let mut cursors: Vec<Cursor<'_, E>> = Vec::with_capacity(aligned.len());
    for (f, use_value, prefix_depth) in &aligned {
        let eff = prefix_depth.unwrap_or_else(|| f.arity());
        // Every participating column must be bound by the ordering, in the
        // ordering's relative order (prefix filters skip alignment, so check
        // the relative order too).
        debug_assert!(
            {
                let mut last: Option<usize> = None;
                f.schema()[..eff].iter().all(|v| {
                    let p = order.iter().position(|o| o == v);
                    let ok = p.is_some() && p > last;
                    last = p;
                    ok
                })
            },
            "factor columns not covered by the join order in order"
        );
        // Factors constrained at the first join variable have it as their
        // first aligned column; restrict their trie root to the chunk range.
        let restrict =
            (f.schema().first() == order.first()).then_some(first_range).filter(|&(lo, hi)| {
                (lo, hi) != (0, u32::MAX) // full range needs no view
            });
        cursors.push(Cursor::new(rep, f.as_ref(), restrict, *use_value, eff));
    }

    // participants[d] = cursor indices constrained at depth d.
    let participants: Vec<Vec<usize>> = (0..order.len())
        .map(|d| {
            (0..cursors.len())
                .filter(|&c| {
                    let cur = &cursors[c];
                    cur.factor.schema()[..cur.eff_arity].contains(&order[d])
                })
                .collect()
        })
        .collect();

    let mut binding: Vec<u32> = Vec::with_capacity(order.len());
    search(
        domains,
        order,
        &participants,
        &mut cursors,
        &mut binding,
        first_range,
        &prefix,
        &mut mul,
        &mut on_match,
        &mut stats,
    );
    stats
}

#[allow(clippy::too_many_arguments)]
fn search<E: SemiringElem>(
    domains: &Domains,
    order: &[Var],
    participants: &[Vec<usize>],
    cursors: &mut [Cursor<'_, E>],
    binding: &mut Vec<u32>,
    first_range: (u32, u32),
    prefix: &E,
    mul: &mut impl FnMut(&E, &E) -> E,
    on_match: &mut impl FnMut(&[u32], E),
    stats: &mut JoinStats,
) {
    let d = binding.len();
    stats.nodes += 1;
    if d == order.len() {
        // All variables bound: every cursor points at a single row.
        let mut val = prefix.clone();
        for c in cursors.iter() {
            if c.use_value {
                // `value_at` goes through the factor's storage backing, so
                // spilled (file-chunked) factors join without materializing.
                val = mul(&val, c.factor.value_at(c.row()).as_ref());
            }
        }
        stats.matches += 1;
        on_match(binding, val);
        return;
    }

    // The candidate window at this depth: restricted for the first variable,
    // unrestricted below it.
    let (val_lo, val_hi) = if d == 0 { first_range } else { (0, u32::MAX) };

    let parts = &participants[d];
    if parts.is_empty() {
        // Unconstrained variable: iterate its whole domain (∩ the window).
        for x in val_lo..domains.size(order[d]).min(val_hi) {
            binding.push(x);
            search(
                domains,
                order,
                participants,
                cursors,
                binding,
                first_range,
                prefix,
                mul,
                on_match,
                stats,
            );
            binding.pop();
        }
        return;
    }

    // Leapfrog intersection of the participants' current levels.
    let mut candidate: u32 = val_lo;
    'candidates: loop {
        // Raise `candidate` until all participants agree it is present.
        let mut stable = false;
        while !stable {
            stable = true;
            for &ci in parts {
                stats.seeks += 1;
                // Cooperative deadline/cancel poll, amortized to one check per
                // 1024 seeks. Reads the counter without perturbing it, so the
                // bit-identical seek statistics pinned by tests are untouched.
                if stats.seeks & 0x3FF == 0 {
                    faq_factor::fault::checkpoint();
                }
                match cursors[ci].seek(candidate) {
                    None => break 'candidates,
                    Some(v) if v > candidate => {
                        candidate = v;
                        stable = false;
                    }
                    Some(_) => {}
                }
            }
        }
        if candidate >= val_hi {
            break;
        }

        // Descend: bind every participant to this value.
        for &ci in parts {
            cursors[ci].open(candidate);
        }
        binding.push(candidate);
        search(
            domains,
            order,
            participants,
            cursors,
            binding,
            first_range,
            prefix,
            mul,
            on_match,
            stats,
        );
        binding.pop();
        for &ci in parts {
            cursors[ci].up();
        }

        if candidate == u32::MAX {
            break;
        }
        candidate += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faq_hypergraph::v;

    fn fac(schema: &[u32], rows: &[(&[u32], u64)]) -> Factor<u64> {
        Factor::new(
            schema.iter().map(|&i| v(i)).collect(),
            rows.iter().map(|(r, val)| (r.to_vec(), *val)).collect(),
        )
        .unwrap()
    }

    fn collect_join(
        domains: &Domains,
        order: &[Var],
        inputs: &[JoinInput<'_, u64>],
    ) -> Vec<(Vec<u32>, u64)> {
        let mut out = Vec::new();
        multiway_join(
            domains,
            order,
            inputs,
            1u64,
            |a, b| a * b,
            |b, val| {
                out.push((b.to_vec(), val));
            },
        );
        out
    }

    #[test]
    fn two_way_equijoin() {
        let r = fac(&[0, 1], &[(&[0, 1], 2), (&[1, 2], 3)]);
        let s = fac(&[1, 2], &[(&[1, 5], 0), (&[1, 3], 7), (&[2, 0], 11)]);
        let d = Domains::new(vec![4, 6, 6]);
        let out =
            collect_join(&d, &[v(0), v(1), v(2)], &[JoinInput::value(&r), JoinInput::value(&s)]);
        // (0,1) joins with (1,5)->0 and (1,3)->7 ; (1,2) with (2,0)->11.
        assert_eq!(out, vec![(vec![0, 1, 3], 14), (vec![0, 1, 5], 0), (vec![1, 2, 0], 33),]);
        let _ = d;
    }

    #[test]
    fn triangle_join_counts() {
        // Triangle query R(a,b) ⋈ S(a,c) ⋈ T(b,c) on a 3-clique graph {0,1,2}.
        let edges: Vec<(&[u32], u64)> = vec![
            (&[0, 1], 1),
            (&[0, 2], 1),
            (&[1, 2], 1),
            (&[1, 0], 1),
            (&[2, 0], 1),
            (&[2, 1], 1),
        ];
        let r = fac(&[0, 1], &edges);
        let s = fac(&[0, 2], &edges);
        let t = fac(&[1, 2], &edges);
        let d = Domains::uniform(3, 3);
        let out = collect_join(
            &d,
            &[v(0), v(1), v(2)],
            &[JoinInput::value(&r), JoinInput::value(&s), JoinInput::value(&t)],
        );
        // Directed triangles in K3: 3! = 6 orderings.
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|(_, val)| *val == 1));
    }

    #[test]
    fn outputs_in_lexicographic_order() {
        let r = fac(&[0], &[(&[2], 1), (&[0], 1), (&[1], 1)]);
        let s = fac(&[1], &[(&[1], 1), (&[0], 1)]);
        let d = Domains::uniform(2, 3);
        let out = collect_join(&d, &[v(0), v(1)], &[JoinInput::value(&r), JoinInput::value(&s)]);
        let keys: Vec<Vec<u32>> = out.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn filter_inputs_do_not_contribute_values() {
        let r = fac(&[0], &[(&[0], 5), (&[1], 7)]);
        let g = fac(&[0], &[(&[1], 999)]); // guard: only x0=1 allowed
        let d = Domains::uniform(1, 2);
        let out = collect_join(&d, &[v(0)], &[JoinInput::value(&r), JoinInput::filter(&g)]);
        assert_eq!(out, vec![(vec![1], 7)]);
    }

    #[test]
    fn unconstrained_variable_iterates_domain() {
        let r = fac(&[0], &[(&[1], 3)]);
        let d = Domains::new(vec![2, 3]);
        let out = collect_join(&d, &[v(0), v(1)], &[JoinInput::value(&r)]);
        assert_eq!(out, vec![(vec![1, 0], 3), (vec![1, 1], 3), (vec![1, 2], 3)]);
    }

    #[test]
    fn nullary_scalars_multiply_or_annihilate() {
        let r = fac(&[0], &[(&[0], 3)]);
        let scalar = Factor::nullary(Some(10u64));
        let d = Domains::uniform(1, 2);
        let out = collect_join(&d, &[v(0)], &[JoinInput::value(&r), JoinInput::value(&scalar)]);
        assert_eq!(out, vec![(vec![0], 30)]);

        let zero = Factor::<u64>::nullary(None);
        let out = collect_join(&d, &[v(0)], &[JoinInput::value(&r), JoinInput::value(&zero)]);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_factor_empties_join() {
        let r = fac(&[0], &[]);
        let s = fac(&[0], &[(&[0], 1)]);
        let d = Domains::uniform(1, 2);
        let out = collect_join(&d, &[v(0)], &[JoinInput::value(&r), JoinInput::value(&s)]);
        assert!(out.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let r = fac(&[0, 1], &[(&[0, 0], 1), (&[1, 1], 1)]);
        let d = Domains::uniform(2, 2);
        let mut out = Vec::new();
        let stats = multiway_join(
            &d,
            &[v(0), v(1)],
            &[JoinInput::value(&r)],
            1u64,
            |a, b| a * b,
            |b, val| out.push((b.to_vec(), val)),
        );
        assert_eq!(stats.matches, 2);
        assert!(stats.seeks > 0);
        assert!(stats.nodes >= 3);
    }

    #[test]
    fn misordered_schema_is_aligned_automatically() {
        // Factor declared with schema (1, 0); join order (0, 1).
        let f = Factor::new(vec![v(1), v(0)], vec![(vec![5, 0], 2u64), (vec![3, 1], 4)]).unwrap();
        let d = Domains::new(vec![2, 6]);
        let out = collect_join(&d, &[v(0), v(1)], &[JoinInput::value(&f)]);
        assert_eq!(out, vec![(vec![0, 5], 2), (vec![1, 3], 4)]);
    }

    #[test]
    fn range_restriction_partitions_the_output() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let dsize = 8u32;
        let d = Domains::uniform(3, dsize);
        let mk = |rng: &mut StdRng, vars: &[u32]| {
            let mut tuples = Vec::new();
            for _ in 0..40 {
                tuples.push((
                    (0..vars.len()).map(|_| rng.gen_range(0..dsize)).collect::<Vec<u32>>(),
                    rng.gen_range(1..5u64),
                ));
            }
            Factor::with_combine(
                vars.iter().map(|&i| v(i)).collect(),
                tuples,
                |a, b| a + b,
                |&x| x == 0,
            )
            .unwrap()
        };
        let f1 = mk(&mut rng, &[0, 1]);
        let f2 = mk(&mut rng, &[1, 2]);
        let order = [v(0), v(1), v(2)];
        let inputs = [JoinInput::value(&f1), JoinInput::value(&f2)];
        let full = collect_join(&d, &order, &inputs);
        // Any partition of [0, u32::MAX) into value ranges reproduces the
        // full output stream by concatenation — under both representations.
        for rep in [JoinRep::Listing, JoinRep::Trie] {
            for cuts in [vec![4u32], vec![2, 5], vec![1, 2, 3, 4, 5, 6, 7]] {
                let mut pieces = Vec::new();
                let mut lo = 0u32;
                for &c in cuts.iter().chain(std::iter::once(&u32::MAX)) {
                    multiway_join_range_rep(
                        rep,
                        &d,
                        &order,
                        &inputs,
                        (lo, c),
                        1u64,
                        |a, b| a * b,
                        |b, val| pieces.push((b.to_vec(), val)),
                    );
                    lo = c;
                }
                assert_eq!(pieces, full, "rep {rep:?} cuts {cuts:?}");
            }
        }
    }

    #[test]
    fn range_restriction_applies_to_unconstrained_first_variable() {
        let r = fac(&[1], &[(&[0], 3), (&[1], 5)]);
        let d = Domains::new(vec![4, 2]);
        // v(0) is unconstrained: full join iterates its whole domain.
        let mut out = Vec::new();
        multiway_join_range(
            &d,
            &[v(0), v(1)],
            &[JoinInput::value(&r)],
            (1, 3),
            1u64,
            |a, b| a * b,
            |b, val| out.push((b.to_vec(), val)),
        );
        assert_eq!(out, vec![(vec![1, 0], 3), (vec![1, 1], 5), (vec![2, 0], 3), (vec![2, 1], 5)]);
    }

    #[test]
    fn random_joins_match_nested_loop_semantics() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..30 {
            let dsize = rng.gen_range(2..4u32);
            let d = Domains::uniform(3, dsize);
            let mk = |rng: &mut StdRng, vars: &[u32]| {
                let mut tuples = Vec::new();
                for _ in 0..rng.gen_range(0..8) {
                    tuples.push((
                        (0..vars.len()).map(|_| rng.gen_range(0..dsize)).collect::<Vec<u32>>(),
                        rng.gen_range(1..5u64),
                    ));
                }
                Factor::with_combine(
                    vars.iter().map(|&i| v(i)).collect(),
                    tuples,
                    |a, b| a + b,
                    |&x| x == 0,
                )
                .unwrap()
            };
            let f1 = mk(&mut rng, &[0, 1]);
            let f2 = mk(&mut rng, &[1, 2]);
            let f3 = mk(&mut rng, &[0, 2]);
            let order = [v(0), v(1), v(2)];
            let got = collect_join(
                &d,
                &order,
                &[JoinInput::value(&f1), JoinInput::value(&f2), JoinInput::value(&f3)],
            );
            // Brute force.
            let mut expect = Vec::new();
            for a in 0..dsize {
                for b in 0..dsize {
                    for c in 0..dsize {
                        let p = f1.get(&[a, b]).copied();
                        let q = f2.get(&[b, c]).copied();
                        let r = f3.get(&[a, c]).copied();
                        if let (Some(p), Some(q), Some(r)) = (p, q, r) {
                            expect.push((vec![a, b, c], p * q * r));
                        }
                    }
                }
            }
            assert_eq!(got, expect);
        }
    }

    /// The two representations emit identical output streams *and* identical
    /// seek counts on full-range joins.
    #[test]
    fn listing_and_trie_agree_bit_for_bit() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        for round in 0..40 {
            let dsize = rng.gen_range(2..8u32);
            let d = Domains::uniform(4, dsize);
            let mk = |rng: &mut StdRng, vars: &[u32], n: usize| {
                let mut tuples = Vec::new();
                for _ in 0..n {
                    tuples.push((
                        (0..vars.len()).map(|_| rng.gen_range(0..dsize)).collect::<Vec<u32>>(),
                        rng.gen_range(1..9u64),
                    ));
                }
                Factor::with_combine(
                    vars.iter().map(|&i| v(i)).collect(),
                    tuples,
                    |a, b| a + b,
                    |&x| x == 0,
                )
                .unwrap()
            };
            let n = rng.gen_range(0..30);
            let f1 = mk(&mut rng, &[0, 1, 2], n);
            let f2 = mk(&mut rng, &[1, 3], n);
            let f3 = mk(&mut rng, &[0, 3], n);
            let order = [v(0), v(1), v(2), v(3)];
            let inputs = [JoinInput::value(&f1), JoinInput::value(&f2), JoinInput::filter(&f3)];
            let run = |rep: JoinRep| {
                let mut out = Vec::new();
                let stats = multiway_join_rep(
                    rep,
                    &d,
                    &order,
                    &inputs,
                    1u64,
                    |a, b| a * b,
                    |b, val| out.push((b.to_vec(), val)),
                );
                (out, stats)
            };
            let (out_l, stats_l) = run(JoinRep::Listing);
            let (out_t, stats_t) = run(JoinRep::Trie);
            assert_eq!(out_l, out_t, "round {round}");
            assert_eq!(stats_l, stats_t, "round {round}: stats must match on full range");
        }
    }
}
