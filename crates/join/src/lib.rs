//! OutsideIn: the worst-case-optimal multiway join under a variable ordering.
//!
//! Paper §5.1.1: the FAQ-SS expression is evaluated by backtracking search
//! from the outer-most aggregate inward, restricting each factor to the
//! values consistent with the current partial assignment. With sorted factors
//! this *is* the LeapFrog-TrieJoin family of worst-case-optimal join
//! algorithms, and Theorem 5.1 bounds its runtime by
//! `O(mn · AGM(V) · log N)`.
//!
//! * [`multiway_join`] — the optimal backtracking join; enumerates satisfying
//!   assignments in lexicographic order of the variable ordering, which is
//!   what lets InsideOut stream-aggregate the innermost variable. The cursors
//!   walk either the columnar trie index or the raw sorted listing
//!   ([`JoinRep`]); the trie is the default.
//! * [`baseline`] — pairwise hash joins and nested loops, the comparison
//!   points for the Table 1 "Joins" row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod leapfrog;

pub use baseline::{nested_loop_join, pairwise_hash_join};
pub use leapfrog::{
    multiway_join, multiway_join_range, multiway_join_range_rep, multiway_join_rep, JoinInput,
    JoinRep, JoinStats,
};
