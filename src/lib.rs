//! `faq` — Functional Aggregate Queries (PODS 2016) in Rust.
//!
//! A facade crate re-exporting the whole FAQ stack. See the individual crates
//! for documentation:
//!
//! * [`semiring`] — commutative semirings and multi-aggregate domains;
//! * [`lp`] — the simplex solver behind fractional edge covers;
//! * [`hypergraph`] — hypergraphs, acyclicity, tree decompositions, widths;
//! * [`factor`] — listing-representation factors;
//! * [`join`] — the OutsideIn worst-case-optimal join and baselines;
//! * [`core`] — the FAQ query model, InsideOut, expression trees, EVO, faqw;
//! * [`cnf`] — β-acyclic SAT/#SAT via variable elimination;
//! * [`apps`] — joins, conjunctive queries, QCQ/#QCQ, graphical models,
//!   matrix chains, the DFT and CSPs expressed as FAQ instances.

#![forbid(unsafe_code)]

pub use faq_apps as apps;
pub use faq_cnf as cnf;
pub use faq_core as core;
pub use faq_factor as factor;
pub use faq_hypergraph as hypergraph;
pub use faq_join as join;
pub use faq_lp as lp;
pub use faq_semiring as semiring;
