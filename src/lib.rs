//! `faq` — Functional Aggregate Queries (PODS 2016) in Rust.
//!
//! A facade crate re-exporting the whole FAQ stack. The everyday types live
//! at the root, so a quickstart needs a single import:
//!
//! ```
//! use faq::*;
//!
//! // Count paths of length 2 in a 3-cycle: ϕ(x0) = Σ_{x1} Σ_{x2} E(x0,x1)·E(x1,x2)
//! let edges: Vec<(Vec<u32>, u64)> =
//!     vec![(vec![0, 1], 1), (vec![1, 2], 1), (vec![2, 0], 1)];
//! let q = FaqQuery::new(
//!     CountDomain,
//!     Domains::uniform(3, 3),
//!     vec![Var(0)],
//!     vec![
//!         (Var(1), VarAgg::Semiring(CountDomain::SUM)),
//!         (Var(2), VarAgg::Semiring(CountDomain::SUM)),
//!     ],
//!     vec![
//!         Factor::new(vec![Var(0), Var(1)], edges.clone()).unwrap(),
//!         Factor::new(vec![Var(1), Var(2)], edges).unwrap(),
//!     ],
//! )
//! .unwrap();
//! let out = Engine::new().evaluate(&q).unwrap();
//! assert_eq!(out.factor.len(), 3);
//! ```
//!
//! [`Engine`] is the unified entry point (one-shot evaluation, thread
//! budgets, planning/serving via [`PreparedQuery`]); [`serve`] hosts the
//! multi-tenant serving runtime ([`FaqServer`]). The legacy free functions
//! (`insideout`, `insideout_par`, …) still work and delegate to the same
//! machinery.
//!
//! The full crates remain available under their module names:
//!
//! * [`semiring`] — commutative semirings and multi-aggregate domains;
//! * [`lp`] — the simplex solver behind fractional edge covers;
//! * [`hypergraph`] — hypergraphs, acyclicity, tree decompositions, widths;
//! * [`factor`] — listing-representation factors;
//! * [`join`] — the OutsideIn worst-case-optimal join and baselines;
//! * [`core`] — the FAQ query model, InsideOut, expression trees, EVO, faqw;
//! * [`serve`] — multi-tenant serving: epoch snapshots, worker pool,
//!   admission, cross-query result sharing;
//! * [`cnf`] — β-acyclic SAT/#SAT via variable elimination;
//! * [`apps`] — joins, conjunctive queries, QCQ/#QCQ, graphical models,
//!   matrix chains, the DFT and CSPs expressed as FAQ instances.

#![forbid(unsafe_code)]

pub use faq_apps as apps;
pub use faq_cnf as cnf;
pub use faq_core as core;
pub use faq_factor as factor;
pub use faq_hypergraph as hypergraph;
pub use faq_join as join;
pub use faq_lp as lp;
pub use faq_semiring as semiring;
pub use faq_serve as serve;

pub use faq_core::{
    DeltaFactor, DeltaOp, Engine, ExecPolicy, FaqError, FaqOutput, FaqQuery, PlanCache, Planner,
    PreparedQuery, QueryPlan, VarAgg,
};
pub use faq_factor::{Domains, Factor, FactorBuilder};
pub use faq_hypergraph::Var;
pub use faq_join::JoinRep;
pub use faq_semiring::{
    AggDomain, AggId, BoolDomain, CountDomain, RealDomain, SemiringElem, SingleSemiringDomain,
};
pub use faq_serve::{FaqServer, QueryId, QuerySpec, ServeConfig};
