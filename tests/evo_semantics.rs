//! Semantic validation of the EVO characterization (paper §6).
//!
//! * Soundness: orderings accepted by `is_equivalent_ordering` evaluate
//!   identically to the original expression on randomized inputs.
//! * Completeness of the *rejection*: for orderings the checker rejects, we
//!   search for a witness input on which the two expressions differ — the
//!   Proposition 6.7 style adversarial argument, realized by random search
//!   over small factor tables.

use faq::core::evo::is_equivalent_ordering;
use faq::core::{naive_eval, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::CountDomain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evaluate the query with the aggregates *permuted along* an ordering `pi`
/// (paper Definition 5.7(b)): the bound list is reordered so variable `v`
/// keeps its own aggregate.
fn eval_permuted(q: &FaqQuery<CountDomain>, pi: &[Var]) -> Factor<u64> {
    let f = q.free.len();
    let mut q2 = q.clone();
    q2.bound = pi[f..].iter().map(|&v| (v, q.agg_of(v).expect("bound var"))).collect();
    naive_eval(&q2)
}

fn random_instance(
    rng: &mut StdRng,
    schemas: &[&[u32]],
    bound: &[(u32, VarAgg)],
    dom: u32,
) -> FaqQuery<CountDomain> {
    let n_vars = bound.len();
    let factors: Vec<Factor<u64>> = schemas
        .iter()
        .map(|schema| {
            let vars: Vec<Var> = schema.iter().map(|&i| Var(i)).collect();
            let mut tuples = Vec::new();
            let mut cur = vec![0u32; vars.len()];
            loop {
                if rng.gen_bool(0.65) {
                    tuples.push((cur.clone(), rng.gen_range(1..4u64)));
                }
                let mut i = vars.len();
                let done = loop {
                    if i == 0 {
                        break true;
                    }
                    i -= 1;
                    cur[i] += 1;
                    if cur[i] < dom {
                        break false;
                    }
                    cur[i] = 0;
                };
                if done {
                    break;
                }
            }
            Factor::new(vars, tuples).unwrap()
        })
        .collect();
    FaqQuery::new(
        CountDomain,
        Domains::uniform(n_vars, dom),
        vec![],
        bound.iter().map(|&(i, a)| (Var(i), a)).collect(),
        factors,
    )
    .unwrap()
}

fn all_permutations(ids: &[u32]) -> Vec<Vec<Var>> {
    fn rec(arr: &mut Vec<Var>, k: usize, out: &mut Vec<Vec<Var>>) {
        if k == arr.len() {
            out.push(arr.clone());
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            rec(arr, k + 1, out);
            arr.swap(k, i);
        }
    }
    let mut arr: Vec<Var> = ids.iter().map(|&i| Var(i)).collect();
    let mut out = Vec::new();
    rec(&mut arr, 0, &mut out);
    out
}

/// For a fixed query structure, classify every permutation with the checker
/// and verify the classification semantically over many random inputs.
fn classify_and_verify(schemas: &[&[u32]], bound: &[(u32, VarAgg)], rounds: usize, seed: u64) {
    let ids: Vec<u32> = bound.iter().map(|&(i, _)| i).collect();
    let perms = all_permutations(&ids);
    let mut rng = StdRng::seed_from_u64(seed);

    // Classify using the structural checker (shape is input-independent).
    let proto = random_instance(&mut rng, schemas, bound, 2);
    let shape = proto.shape();
    let accepted: Vec<bool> = perms.iter().map(|pi| is_equivalent_ordering(&shape, pi)).collect();
    assert!(accepted.iter().any(|&a| a), "the input ordering itself must be accepted");

    // Semantic check. Accepted orderings must agree on EVERY input; rejected
    // orderings must disagree on SOME input.
    let mut refuted = vec![false; perms.len()];
    for _ in 0..rounds {
        let q = random_instance(&mut rng, schemas, bound, 2);
        let reference = naive_eval(&q);
        for (idx, pi) in perms.iter().enumerate() {
            let val = eval_permuted(&q, pi);
            if accepted[idx] {
                assert_eq!(
                    val, reference,
                    "accepted ordering {pi:?} differs on some input — unsound!"
                );
            } else if val != reference {
                refuted[idx] = true;
            }
        }
    }
    for (idx, pi) in perms.iter().enumerate() {
        if !accepted[idx] {
            assert!(
                refuted[idx],
                "rejected ordering {pi:?} never differed across {rounds} random inputs — \
                 the checker may be too conservative for this structure"
            );
        }
    }
}

#[test]
fn sum_max_chain_classification() {
    // ϕ = Σ1 max2 Σ3 ψ12 ψ23 — the classic non-commuting pair.
    classify_and_verify(
        &[&[0, 1], &[1, 2]],
        &[
            (0, VarAgg::Semiring(CountDomain::SUM)),
            (1, VarAgg::Semiring(CountDomain::MAX)),
            (2, VarAgg::Semiring(CountDomain::SUM)),
        ],
        60,
        1,
    );
}

#[test]
fn example_6_13_classification() {
    // ϕ = Σ1 max2 Σ3 ψ12 ψ13: EVO = {(1,2,3),(1,3,2),(3,1,2)}.
    classify_and_verify(
        &[&[0, 1], &[0, 2]],
        &[
            (0, VarAgg::Semiring(CountDomain::SUM)),
            (1, VarAgg::Semiring(CountDomain::MAX)),
            (2, VarAgg::Semiring(CountDomain::SUM)),
        ],
        60,
        2,
    );
}

#[test]
fn product_aggregate_classification() {
    // ϕ = Σ1 Π2 Σ3 ψ12 ψ23 over ℕ (non-idempotent ⊗): the Definition 6.30
    // relation applies; only orderings keeping Σ1 ≺ Π2 ≺ Σ3-ish structure
    // survive.
    classify_and_verify(
        &[&[0, 1], &[1, 2]],
        &[
            (0, VarAgg::Semiring(CountDomain::SUM)),
            (1, VarAgg::Product),
            (2, VarAgg::Semiring(CountDomain::SUM)),
        ],
        80,
        3,
    );
}

#[test]
fn disconnected_components_classification() {
    // ϕ = Σ1 max2 Σ3 max4 ψ13 ψ24: two disconnected components — orderings
    // interleave freely as long as each component keeps its relative order.
    classify_and_verify(
        &[&[0, 2], &[1, 3]],
        &[
            (0, VarAgg::Semiring(CountDomain::SUM)),
            (1, VarAgg::Semiring(CountDomain::MAX)),
            (2, VarAgg::Semiring(CountDomain::SUM)),
            (3, VarAgg::Semiring(CountDomain::MAX)),
        ],
        40,
        4,
    );
}

#[test]
fn faq_ss_accepts_everything() {
    // Single semiring: all orderings are equivalent; none may be rejected.
    let bound = [
        (0u32, VarAgg::Semiring(CountDomain::SUM)),
        (1, VarAgg::Semiring(CountDomain::SUM)),
        (2, VarAgg::Semiring(CountDomain::SUM)),
    ];
    let mut rng = StdRng::seed_from_u64(5);
    let proto = random_instance(&mut rng, &[&[0, 1], &[1, 2]], &bound, 2);
    let shape = proto.shape();
    for pi in all_permutations(&[0, 1, 2]) {
        assert!(is_equivalent_ordering(&shape, &pi), "{pi:?}");
    }
}
