//! Workspace smoke test: every facade re-export resolves and a tiny FAQ
//! instance evaluates identically under naive evaluation and InsideOut.
//!
//! This is the first test a fresh checkout should run: it fails fast if the
//! crate graph, the facade's `pub use` surface, or the basic engine pipeline
//! is broken, without depending on any of the deeper paper-reproduction
//! machinery the other integration tests exercise.

use faq::core::{insideout, naive_eval, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::{Hypergraph, Var, VarSet};
use faq::semiring::{CountDomain, Semiring};

/// A two-factor chain query Σ_{x0} max_{x1} Π_{x2} ψ01·ψ12, built entirely
/// through facade paths, must agree between the naive oracle and InsideOut.
#[test]
fn facade_pipeline_insideout_equals_naive() {
    let f01 = Factor::new(
        vec![Var(0), Var(1)],
        vec![(vec![0, 0], 2u64), (vec![0, 1], 1), (vec![1, 0], 3), (vec![1, 1], 1)],
    )
    .unwrap();
    let f12 = Factor::new(
        vec![Var(1), Var(2)],
        vec![(vec![0, 0], 1u64), (vec![0, 1], 4), (vec![1, 0], 2), (vec![1, 1], 1)],
    )
    .unwrap();
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, 2),
        vec![],
        vec![
            (Var(0), VarAgg::Semiring(CountDomain::SUM)),
            (Var(1), VarAgg::Semiring(CountDomain::MAX)),
            (Var(2), VarAgg::Product),
        ],
        vec![f01, f12],
    )
    .unwrap();

    let expect = naive_eval(&q);
    let got = insideout(&q).unwrap();
    assert_eq!(got.factor, expect);
    assert!(got.scalar().is_some(), "non-trivial instance must not evaluate to zero");
}

/// The remaining facade modules resolve and their basic entry points work.
#[test]
fn facade_reexports_resolve() {
    // semiring: a concrete Semiring impl through the facade path.
    let s = faq::semiring::CountSumProd;
    assert_eq!(s.add(&2, &3), 5);

    // hypergraph + lp: ρ* of the triangle is 3/2 (paper §4.2), computed by
    // faq::lp's simplex under the hood.
    let mut h = Hypergraph::new();
    for i in 0..3 {
        h.add_vertex(Var(i));
    }
    h.add_edge([Var(0), Var(1)]);
    h.add_edge([Var(1), Var(2)]);
    h.add_edge([Var(0), Var(2)]);
    let all: VarSet = (0..3).map(Var).collect();
    let rho = faq::hypergraph::rho_star(&h, &all);
    assert!((rho - 1.5).abs() < 1e-9, "triangle fractional edge cover, got {rho}");

    // lp, directly: minimize x s.t. x ≥ 7.
    let sol = faq::lp::LinearProgram::minimize(vec![1.0])
        .constraint(vec![1.0], faq::lp::ConstraintOp::Ge, 7.0)
        .solve()
        .unwrap();
    assert!((sol.objective - 7.0).abs() < 1e-9);

    // apps + join: triangle counting on a 3-clique finds one triangle per
    // orientation of the query's variable bindings.
    let q = faq::apps::joins::triangle_query(&[(0, 1), (1, 2), (0, 2)], 3);
    assert_eq!(q.count().unwrap(), 1);

    // cnf: a trivially satisfiable β-acyclic formula.
    let clause = faq::cnf::Clause::new(vec![faq::cnf::Lit::pos(0)]).unwrap();
    let cnf = faq::cnf::Cnf::new(2, vec![clause]);
    assert!(faq::cnf::brute_force_sat(&cnf));
}
