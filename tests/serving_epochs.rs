//! Serving-runtime stress test: concurrent writers publish epochs while
//! readers evaluate, and every answer must be consistent with exactly one
//! published epoch — bit-identical to a serial oracle that replays the
//! deltas in epoch order.
//!
//! This is the `faq_serve` correctness contract: a reader never observes a
//! half-applied delta (its snapshot is immutable), never observes a stale
//! cache entry (the writer refreshes caches incrementally at publish), and
//! the epoch tag on the answer names exactly which data version it saw.

use faq::serve::{CacheMode, FaqServer, QuerySpec, ServeConfig};
use faq::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const DOM: u32 = 10;

fn edge(seed: u64, rows: usize, a: u32, b: u32) -> Factor<u64> {
    let mut r = StdRng::seed_from_u64(seed);
    let mut tuples = std::collections::BTreeMap::new();
    for _ in 0..rows {
        tuples.insert(vec![r.gen_range(0..DOM), r.gen_range(0..DOM)], r.gen_range(1..4u64));
    }
    Factor::new(vec![Var(a), Var(b)], tuples.into_iter().collect()).unwrap()
}

/// ϕ(x0) = Σ_{x1} Σ_{x2} R0(x0,x1)·R1(x1,x2)·R2(x0,x2): per-node triangle
/// counts, so a mixed-epoch answer is visible in the output rows, not just
/// in a scalar.
fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::SUM)),
        ],
        vec![0, 1, 2],
    )
}

fn oracle_eval(catalog: &[Factor<u64>]) -> Factor<u64> {
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, DOM),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::SUM)),
        ],
        catalog.to_vec(),
    )
    .unwrap();
    Engine::sequential().evaluate(&q).unwrap().factor
}

fn random_delta(r: &mut StdRng, slot: usize) -> DeltaFactor<u64> {
    let schema = [(0u32, 1u32), (1, 2), (0, 2)][slot];
    let n = r.gen_range(1..4usize);
    let mut tuples = std::collections::BTreeMap::new();
    for _ in 0..n {
        tuples.insert(vec![r.gen_range(0..DOM), r.gen_range(0..DOM)], r.gen_range(1..3u64));
    }
    DeltaFactor::inserts(vec![Var(schema.0), Var(schema.1)], tuples.into_iter().collect()).unwrap()
}

fn run_stress(workers: usize, seed: u64) {
    let catalog = vec![edge(seed, 180, 0, 1), edge(seed + 1, 180, 1, 2), edge(seed + 2, 180, 0, 2)];
    let server = FaqServer::with_config(
        ServeConfig::default().workers(workers),
        CountDomain,
        Domains::uniform(3, DOM),
        catalog.clone(),
    );
    let q = server.register(spec()).unwrap();

    // Every publish is recorded with the epoch it created, so the oracle can
    // replay the exact serial history the (lock-serialized) writers produced.
    let publishes: Mutex<Vec<(u64, usize, DeltaFactor<u64>)>> = Mutex::new(Vec::new());
    let observations: Mutex<Vec<(u64, Arc<Factor<u64>>)>> = Mutex::new(Vec::new());
    let writers_done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Two writers, each owning one catalog slot.
        for w in 0..2usize {
            let server = &server;
            let publishes = &publishes;
            s.spawn(move || {
                let mut r = StdRng::seed_from_u64(seed ^ ((w as u64) << 32));
                for _ in 0..6 {
                    let delta = random_delta(&mut r, w);
                    let epoch = server.publish_delta(w, &delta).unwrap();
                    publishes.lock().unwrap().push((epoch, w, delta));
                    std::thread::yield_now();
                }
            });
        }
        // Two readers alternating cache modes, racing the writers and then
        // taking a few more turns after the last publish so the final epoch
        // is observed too.
        for rd in 0..2usize {
            let server = &server;
            let observations = &observations;
            let writers_done = &writers_done;
            s.spawn(move || {
                let tenant = server.tenant(&format!("reader-{rd}"), 8);
                let mut turns = 0usize;
                let mut after_done = 0usize;
                while after_done < 4 {
                    if writers_done.load(Ordering::SeqCst) {
                        after_done += 1;
                    }
                    let mode =
                        if turns.is_multiple_of(2) { CacheMode::Shared } else { CacheMode::Bypass };
                    let out = server.submit_with(&tenant, q, None, mode).unwrap().wait().unwrap();
                    observations.lock().unwrap().push((out.epoch, out.factor));
                    turns += 1;
                }
            });
        }
        // Flip the done flag once both writers have joined — scope threads
        // can't be joined selectively, so run the writers' join inline.
        let server = &server;
        let writers_done = &writers_done;
        let publishes = &publishes;
        s.spawn(move || {
            while publishes.lock().unwrap().len() < 12 {
                std::thread::yield_now();
            }
            // All 12 publishes recorded; readers taking further turns now see
            // the final epoch.
            let _ = server.current_epoch();
            writers_done.store(true, Ordering::SeqCst);
        });
    });

    // Serial oracle: replay the publishes in epoch order from the initial
    // catalog, evaluating the expected output at every epoch.
    let mut publishes = publishes.into_inner().unwrap();
    publishes.sort_by_key(|(e, _, _)| *e);
    assert_eq!(publishes.len(), 12);
    let mut expected = std::collections::HashMap::new();
    let mut cat = catalog;
    // Epoch 1 is the registration publish over the initial data.
    expected.insert(1u64, oracle_eval(&cat));
    for (epoch, slot, delta) in &publishes {
        let (merged, _) = delta.apply_to(&cat[*slot], |a, b| a + b, |v| *v == 0);
        cat[*slot] = merged;
        expected.insert(*epoch, oracle_eval(&cat));
    }

    let observations = observations.into_inner().unwrap();
    assert!(observations.len() >= 8);
    let final_epoch = publishes.last().unwrap().0;
    let mut saw_final = false;
    for (epoch, factor) in &observations {
        let want = expected
            .get(epoch)
            .unwrap_or_else(|| panic!("answer tagged with unpublished epoch {epoch}"));
        assert_eq!(
            &**factor, want,
            "answer at epoch {epoch} must be bit-identical to the serial oracle"
        );
        saw_final |= *epoch == final_epoch;
    }
    assert!(saw_final, "the post-quiescence reads must observe the final epoch {final_epoch}");
}

#[test]
fn epochs_consistent_two_workers() {
    run_stress(2, 0xFAC7);
}

#[test]
fn epochs_consistent_four_workers() {
    run_stress(4, 0xBEEF);
}
