//! Deterministic fault-injection (chaos) suite for the serving runtime.
//!
//! With a seeded [`FaultPlan`] failing/corrupting/delaying chunk I/O and a
//! seeded [`PanicPlan`] crashing workers, the serving stress run must uphold
//! the fault-tolerance contract: **every** submission resolves to either a
//! result bit-identical to a serial oracle at its answer's epoch or a typed
//! [`ServeError`]; failed publishes never advance the epoch or tear the
//! catalog; and once the faults stop, the full worker pool serves again.
//!
//! Knobs (all optional, for the CI chaos matrix):
//! * `FAQ_CHAOS_SEED` — master seed (default 1);
//! * `FAQ_CHAOS_WORKERS` — worker threads (default 2);
//! * `FAQ_CHAOS_SUBMISSIONS` — total reader submissions (default 500);
//! * `FAQ_CHAOS_SUMMARY` — path to write the failure-counter summary to
//!   (default `target/chaos-summary-<seed>-w<workers>.txt`).

use faq::factor::fault::Deadline;
use faq::factor::{FaultPlan, SpillConfig};
use faq::serve::{CacheMode, FaqServer, PanicPlan, QuerySpec, ServeConfig, ServeError};
use faq::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const DOM: u32 = 10;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn edge(seed: u64, rows: usize, a: u32, b: u32) -> Factor<u64> {
    let mut r = StdRng::seed_from_u64(seed);
    let mut tuples = std::collections::BTreeMap::new();
    for _ in 0..rows {
        tuples.insert(vec![r.gen_range(0..DOM), r.gen_range(0..DOM)], r.gen_range(1..4u64));
    }
    Factor::new(vec![Var(a), Var(b)], tuples.into_iter().collect()).unwrap()
}

/// ϕ(x0) = Σ_{x1,x2} R0(x0,x1)·R1(x1,x2)·R2(x0,x2): per-node triangle counts,
/// so serving a wrong or mixed-epoch answer shows up in the output rows.
fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::SUM)),
        ],
        vec![0, 1, 2],
    )
}

fn oracle_eval(catalog: &[Factor<u64>]) -> Factor<u64> {
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, DOM),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::SUM)),
        ],
        catalog.to_vec(),
    )
    .unwrap();
    Engine::sequential().evaluate(&q).unwrap().factor
}

fn random_delta(r: &mut StdRng, slot: usize) -> DeltaFactor<u64> {
    let schema = [(0u32, 1u32), (1, 2), (0, 2)][slot];
    let n = r.gen_range(1..4usize);
    let mut tuples = std::collections::BTreeMap::new();
    for _ in 0..n {
        tuples.insert(vec![r.gen_range(0..DOM), r.gen_range(0..DOM)], r.gen_range(1..3u64));
    }
    DeltaFactor::inserts(vec![Var(schema.0), Var(schema.1)], tuples.into_iter().collect()).unwrap()
}

#[test]
fn chaos_every_submission_correct_or_typed_error() {
    let seed = env_u64("FAQ_CHAOS_SEED", 1);
    let workers = env_u64("FAQ_CHAOS_WORKERS", 2) as usize;
    let total_submissions = env_u64("FAQ_CHAOS_SUBMISSIONS", 500);

    // Spilled catalog with tiny chunks and a tight pin window, so chunk I/O
    // (and therefore injected storage faults) happens throughout.
    let spill = SpillConfig { dir: None, chunk_rows: 8, level_chunk_entries: 64, window_chunks: 2 };
    let mem_catalog =
        vec![edge(seed, 120, 0, 1), edge(seed + 1, 120, 1, 2), edge(seed + 2, 120, 0, 2)];
    let catalog: Vec<Factor<u64>> =
        mem_catalog.iter().map(|f| f.to_spilled(spill.clone())).collect();

    let panic_plan = PanicPlan::seeded(seed ^ 0x9E3779B97F4A7C15, 0.05);
    let server = FaqServer::with_config(
        ServeConfig::default().workers(workers).max_in_flight(256).panic_plan(panic_plan.clone()),
        CountDomain,
        Domains::uniform(3, DOM),
        catalog,
    );
    // Register (and implicitly prime the masters) before the faults start.
    let q = server.register(spec()).unwrap();

    // Serial history: epoch → in-memory mirror of the catalog at that epoch.
    // Only *successful* publishes advance it — a failed publish must leave
    // the previous epoch serving, which the oracle check below verifies.
    let expected: Mutex<std::collections::HashMap<u64, Vec<Factor<u64>>>> =
        Mutex::new(std::collections::HashMap::new());
    expected.lock().unwrap().insert(server.current_epoch(), mem_catalog.clone());

    let observations: Mutex<Vec<(u64, std::sync::Arc<Factor<u64>>)>> = Mutex::new(Vec::new());
    let error_counts = [
        ("storage", AtomicU64::new(0)),
        ("deadline", AtomicU64::new(0)),
        ("panicked", AtomicU64::new(0)),
        ("overloaded", AtomicU64::new(0)),
        ("other-typed", AtomicU64::new(0)),
    ];
    let ok_count = AtomicU64::new(0);
    let writer_failures = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let submitted = AtomicU64::new(0);

    // ≥1% injected chunk-read failures, plus transient errors (absorbed by
    // retry), corruption and delays — decided per logical chunk op from the
    // seed, identically for every thread.
    let fault_guard = FaultPlan::seeded(seed)
        .fail_transient(0.02)
        .fail_hard(0.01)
        .corrupt(0.01)
        .delay(0.01, 200)
        .install_global();

    std::thread::scope(|s| {
        // One writer publishing deltas round-robin over the slots, keeping
        // the in-memory mirror in lockstep with successful publishes.
        {
            let server = &server;
            let expected = &expected;
            let done = &done;
            let writer_failures = &writer_failures;
            s.spawn(move || {
                let mut r = StdRng::seed_from_u64(seed ^ 0xD1B54A32D192ED03);
                let mut mirror = mem_catalog.clone();
                let mut published = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let slot = published % 3;
                    let delta = random_delta(&mut r, slot);
                    match server.publish_delta(slot, &delta) {
                        Ok(epoch) => {
                            let (merged, _) =
                                delta.apply_to(&mirror[slot], |a, b| a + b, |v| *v == 0);
                            mirror[slot] = merged;
                            expected.lock().unwrap().insert(epoch, mirror.clone());
                        }
                        Err(ServeError::Faq(_)) => {
                            // Typed failure: the epoch must not have moved —
                            // readers keep verifying against the old mirror.
                            writer_failures.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => panic!("publish failed with non-engine error {e}"),
                    }
                    published += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        // Readers hammer the server until the submission budget is spent.
        let readers = workers.max(2);
        let submitted = &submitted;
        for rd in 0..readers {
            let server = &server;
            let observations = &observations;
            let error_counts = &error_counts;
            let ok_count = &ok_count;
            s.spawn(move || {
                let tenant = server.tenant(&format!("chaos-{rd}"), 64);
                let mut turn = 0usize;
                while submitted.fetch_add(1, Ordering::SeqCst) < total_submissions {
                    turn += 1;
                    let mode =
                        if turn.is_multiple_of(3) { CacheMode::Shared } else { CacheMode::Bypass };
                    // Every 7th submission carries a tight deadline; it may
                    // still finish in time, so both outcomes are legal.
                    let budget = (turn.is_multiple_of(7)).then(|| {
                        ExecPolicy::sequential().deadline(Deadline::after(Duration::from_millis(2)))
                    });
                    let ticket = match server.submit_with(&tenant, q, budget.as_ref(), mode) {
                        Ok(t) => t,
                        Err(ServeError::Overloaded { .. }) => {
                            error_counts[3].1.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        Err(e) => panic!("admission failed unexpectedly: {e}"),
                    };
                    match ticket.wait() {
                        Ok(out) => {
                            ok_count.fetch_add(1, Ordering::SeqCst);
                            observations.lock().unwrap().push((out.epoch, out.factor));
                        }
                        Err(ServeError::Faq(FaqError::Storage(_))) => {
                            error_counts[0].1.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::DeadlineExceeded) => {
                            error_counts[1].1.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::QueryPanicked) => {
                            error_counts[2].1.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            error_counts[3].1.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e @ ServeError::Faq(_)) => {
                            panic!("unexpected engine error under injection: {e}")
                        }
                        Err(e) => panic!("untyped failure escaped the runtime: {e}"),
                    }
                }
            });
        }

        // The scope joins the readers; release the writer once they're done.
        let done = &done;
        let submitted2 = submitted;
        s.spawn(move || {
            while submitted2.load(Ordering::SeqCst) < total_submissions {
                std::thread::sleep(Duration::from_millis(5));
            }
            done.store(true, Ordering::SeqCst);
        });
    });

    // Chaos over: stop injecting and verify the pool recovered in full.
    drop(fault_guard);
    panic_plan.set_enabled(false);
    let tenant = server.tenant("recovery", 64);
    let recovery: Vec<_> = (0..workers * 2)
        .map(|_| server.submit_with(&tenant, q, None, CacheMode::Bypass).unwrap())
        .collect();
    let recovered: Vec<_> = recovery
        .into_iter()
        .map(|t| t.wait().expect("clean submission after chaos must succeed"))
        .collect();
    for o in &recovered {
        assert_eq!(*o.factor, *recovered[0].factor, "recovered pool must agree");
    }
    assert_eq!(tenant.in_flight(), 0);

    // Every successful answer must be bit-identical to the serial oracle at
    // the epoch it was answered at.
    let expected = expected.into_inner().unwrap();
    let observations = observations.into_inner().unwrap();
    let mut oracle_cache: std::collections::HashMap<u64, Factor<u64>> =
        std::collections::HashMap::new();
    for (epoch, factor) in &observations {
        let cat = expected
            .get(epoch)
            .unwrap_or_else(|| panic!("answer tagged with unpublished epoch {epoch}"));
        let want = oracle_cache.entry(*epoch).or_insert_with(|| oracle_eval(cat));
        assert_eq!(
            &**factor, want,
            "answer at epoch {epoch} must be bit-identical to the serial oracle"
        );
    }

    // Failure-counter summary, for eyeballs and the CI artifact.
    let stats = server.stats();
    let summary = format!(
        "chaos summary: seed={seed} workers={workers}\n\
         submissions: attempted={} ok={} rejected={}\n\
         typed errors: storage={} deadline={} panicked={} overloaded={} other={}\n\
         writer: failed_publishes={} epochs={}\n\
         server counters: deadline_exceeded={} panicked={} io_retries={} corrupt_chunks={}\n",
        stats.submitted,
        ok_count.load(Ordering::SeqCst),
        stats.rejected,
        error_counts[0].1.load(Ordering::SeqCst),
        error_counts[1].1.load(Ordering::SeqCst),
        error_counts[2].1.load(Ordering::SeqCst),
        error_counts[3].1.load(Ordering::SeqCst),
        error_counts[4].1.load(Ordering::SeqCst),
        writer_failures.load(Ordering::SeqCst),
        server.current_epoch(),
        stats.deadline_exceeded,
        stats.panicked,
        stats.io_retries,
        stats.corrupt_chunks,
    );
    eprintln!("{summary}");
    let path = std::env::var("FAQ_CHAOS_SUMMARY")
        .unwrap_or_else(|_| format!("target/chaos-summary-{seed}-w{workers}.txt"));
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _ = std::fs::write(&path, &summary);

    assert!(ok_count.load(Ordering::SeqCst) > 0, "some submissions must succeed under chaos");
}
