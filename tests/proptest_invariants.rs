//! Property-based tests (proptest) on the core data structures and the
//! engine's algebraic invariants.

use faq::core::{insideout, naive_eval, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::elim::EliminationSequence;
use faq::hypergraph::{Hypergraph, Var};
use faq::semiring::{CountDomain, Semiring};
use proptest::prelude::*;

/// Strategy: a small factor over the given variables with dense-ish support.
fn factor_strategy(vars: Vec<Var>, dom: u32) -> impl Strategy<Value = Factor<u64>> {
    let space: usize = (dom as usize).pow(vars.len() as u32);
    proptest::collection::vec(0u64..5, space).prop_map(move |vals| {
        let mut tuples = Vec::new();
        let mut cur = vec![0u32; vars.len()];
        for v in vals {
            if v != 0 {
                tuples.push((cur.clone(), v));
            }
            for i in (0..vars.len()).rev() {
                cur[i] += 1;
                if cur[i] < dom {
                    break;
                }
                cur[i] = 0;
            }
        }
        Factor::new(vars.clone(), tuples).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// InsideOut equals naive evaluation on random 3-variable chain queries
    /// with arbitrary aggregate mixes.
    #[test]
    fn insideout_equals_naive(
        f01 in factor_strategy(vec![Var(0), Var(1)], 2),
        f12 in factor_strategy(vec![Var(1), Var(2)], 2),
        aggs in proptest::collection::vec(0usize..3, 3),
    ) {
        let pick = |i: usize| match aggs[i] {
            0 => VarAgg::Semiring(CountDomain::SUM),
            1 => VarAgg::Semiring(CountDomain::MAX),
            _ => VarAgg::Product,
        };
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, 2),
            vec![],
            vec![(Var(0), pick(0)), (Var(1), pick(1)), (Var(2), pick(2))],
            vec![f01, f12],
        ).unwrap();
        prop_assert_eq!(insideout(&q).unwrap().factor, naive_eval(&q));
    }

    /// Factor projection then re-projection is idempotent on the support.
    #[test]
    fn projection_idempotent(f in factor_strategy(vec![Var(0), Var(1), Var(2)], 3)) {
        let keep = [Var(0), Var(2)];
        let once = f.project_combine(&keep, |a, b| a + b, |&x| x == 0);
        let twice = once.project_combine(&keep, |a, b| a + b, |&x| x == 0);
        prop_assert_eq!(&once, &twice);
        // Sum of values is preserved by projection (no zeros can appear with
        // u64 addition of positives).
        let total: u64 = (0..f.len()).map(|i| *f.value(i)).sum();
        let ptotal: u64 = (0..once.len()).map(|i| *once.value(i)).sum();
        prop_assert_eq!(total, ptotal);
    }

    /// reorder() preserves the multiset of (tuple-as-map, value) pairs.
    #[test]
    fn reorder_preserves_content(f in factor_strategy(vec![Var(0), Var(1)], 3)) {
        let g = f.reorder(&[Var(1), Var(0)]);
        prop_assert_eq!(f.len(), g.len());
        for (row, val) in f.iter() {
            prop_assert_eq!(g.get(&[row[1], row[0]]), Some(val));
        }
    }

    /// The elimination sequence's U-sets cover each eliminated vertex's
    /// incident edges, and the fold rule only shrinks later hypergraphs.
    #[test]
    fn elimination_sequence_wellformed(
        edges in proptest::collection::vec(
            proptest::collection::btree_set(0u32..5, 1..=3),
            1..6,
        )
    ) {
        let mut h = Hypergraph::new();
        for i in 0..5u32 {
            h.add_vertex(Var(i));
        }
        for e in &edges {
            h.add_edge(e.iter().map(|&i| Var(i)));
        }
        let order: Vec<Var> = (0..5).map(Var).collect();
        let seq = EliminationSequence::new(&h, &order);
        for (k, vert) in order.iter().enumerate() {
            let u = seq.u_set(k);
            // Every edge of H_k incident to order[k] is inside U_k.
            for e in seq.edges_before(k) {
                if e.contains(vert) {
                    prop_assert!(e.is_subset(u));
                }
            }
        }
    }

    /// Semiring law spot-checks under proptest-driven values (CountSumProd).
    #[test]
    fn count_semiring_laws(a in 0u64..100, b in 0u64..100, c in 0u64..100) {
        let s = faq::semiring::CountSumProd;
        prop_assert_eq!(s.add(&a, &b), s.add(&b, &a));
        prop_assert_eq!(s.mul(&a, &s.add(&b, &c)), s.add(&s.mul(&a, &b), &s.mul(&a, &c)));
        prop_assert_eq!(s.mul(&a, &s.one()), a);
        prop_assert_eq!(s.mul(&a, &s.zero()), 0);
    }

    /// pow by repeated squaring equals iterated multiplication.
    #[test]
    fn pow_consistent(base in 0u64..5, k in 0u64..12) {
        let s = faq::semiring::CountSumProd;
        let mut expect = 1u64;
        for _ in 0..k {
            expect *= base;
        }
        prop_assert_eq!(s.pow(&base, k), expect);
    }
}
