//! Property tests: the parallel InsideOut engine is bit-identical to the
//! sequential engine.
//!
//! Random queries over three semiring families — counting (`ℕ, +, ×`),
//! max-tropical (`ℝ ∪ {−∞}, max, +`) and boolean (`∨, ∧`) — are evaluated
//! with `insideout` and with `insideout_par` under every combination of
//! thread count ∈ {1, 2, 4} and adversarial `min_chunk_rows` ∈
//! {0, 1, 3, usize::MAX}; the output factors must be equal bit for bit.
//! Aggregate mixes include product (`⊗`) variables and free variables, so the
//! guard phase and the final output join are exercised too.

use faq::core::{insideout, insideout_par, ExecPolicy, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::{AggDomain, BoolDomain, CountDomain, MaxPlus, SingleSemiringDomain};
use proptest::prelude::*;

const DOM: u32 = 4;

/// Thread counts × adversarial chunk floors under test.
fn policies() -> Vec<ExecPolicy> {
    let mut out = Vec::new();
    for threads in [1usize, 2, 4] {
        for min_chunk_rows in [0usize, 1, 3, usize::MAX] {
            out.push(ExecPolicy::sequential().threads(threads).min_chunk_rows(min_chunk_rows));
        }
    }
    out
}

/// Assert `insideout_par ≡ insideout` for every policy.
fn assert_par_equivalent<D: AggDomain + Sync>(q: &FaqQuery<D>) {
    let seq = insideout(q).unwrap();
    for policy in policies() {
        let par = insideout_par(q, &policy).unwrap();
        assert_eq!(
            par.factor, seq.factor,
            "parallel output diverged under threads={} min_chunk_rows={}",
            policy.threads, policy.min_chunk_rows
        );
    }
}

/// Decode a support bitmap into factor tuples over `(a, b)` with values drawn
/// from `vals`.
fn pairs_factor<E: Clone + PartialEq + std::fmt::Debug + Send + Sync>(
    a: u32,
    b: u32,
    support: &[bool],
    mut value_at: impl FnMut(usize) -> E,
) -> Factor<E> {
    let tuples: Vec<(Vec<u32>, E)> = support
        .iter()
        .enumerate()
        .filter(|(_, &on)| on)
        .map(|(i, _)| (vec![i as u32 / DOM, i as u32 % DOM], value_at(i)))
        .collect();
    Factor::new(vec![Var(a), Var(b)], tuples).unwrap()
}

/// The triangle-shaped query skeleton used by all three families: variables
/// {0, 1, 2}, factors on (0,1), (1,2), (0,2), the first `free` variables
/// free, the rest carrying the aggregate picked by `agg`.
fn skeleton(
    free: usize,
    aggs: &[usize],
    pick: impl Fn(usize) -> VarAgg,
) -> (Vec<Var>, Vec<(Var, VarAgg)>) {
    let free_vars: Vec<Var> = (0..free as u32).map(Var).collect();
    let bound: Vec<(Var, VarAgg)> = (free..3).map(|i| (Var(i as u32), pick(aggs[i]))).collect();
    (free_vars, bound)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counting semiring (`#CQ`-style): sum / max / product aggregate mixes.
    #[test]
    fn counting_par_equals_seq(
        s01 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..3, 3),
        free in 0usize..3,
    ) {
        let sup = |s: &[u32]| s.iter().map(|&x| x > 0).collect::<Vec<bool>>();
        let f01 = pairs_factor(0, 1, &sup(&s01), |i| s01[i] as u64);
        let f12 = pairs_factor(1, 2, &sup(&s12), |i| s12[i] as u64);
        let f02 = pairs_factor(0, 2, &sup(&s02), |i| s02[i] as u64);
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(CountDomain::SUM),
            1 => VarAgg::Semiring(CountDomain::MAX),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12, f02],
        ).unwrap();
        assert_par_equivalent(&q);
    }

    /// Max-tropical semiring (MAP in log space): max / + aggregate mixes on
    /// an f64 carrier — the family where fold re-association would show up
    /// as bit-level drift.
    #[test]
    fn max_tropical_par_equals_seq(
        s01 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..2, 3),
        free in 0usize..3,
    ) {
        let sup = |s: &[u32]| s.iter().map(|&x| x > 0).collect::<Vec<bool>>();
        let val = |s: &[u32]| {
            let s = s.to_vec();
            move |i: usize| s[i] as f64 * 0.25
        };
        let f01 = pairs_factor(0, 1, &sup(&s01), val(&s01));
        let f12 = pairs_factor(1, 2, &sup(&s12), val(&s12));
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(SingleSemiringDomain::<MaxPlus>::OP),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            SingleSemiringDomain::new(MaxPlus),
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12],
        ).unwrap();
        assert_par_equivalent(&q);
    }

    /// Boolean semiring (QCQ): ∃ / ∀ quantifier mixes.
    #[test]
    fn boolean_par_equals_seq(
        s01 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..2, 3),
        free in 0usize..3,
    ) {
        let sup = |s: &[u32]| s.iter().map(|&x| x > 0).collect::<Vec<bool>>();
        let f01 = pairs_factor(0, 1, &sup(&s01), |_| true);
        let f12 = pairs_factor(1, 2, &sup(&s12), |_| true);
        let f02 = pairs_factor(0, 2, &sup(&s02), |_| true);
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(BoolDomain::OR),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            BoolDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12, f02],
        ).unwrap();
        assert_par_equivalent(&q);
    }
}

/// Larger single-shot case: enough rows that the default chunk floor engages
/// and every thread count actually chunks.
#[test]
fn large_counting_query_chunks_for_real() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut r = StdRng::seed_from_u64(2024);
    let d = 64u32;
    let mut mk = |a: u32, b: u32| {
        let mut tuples = std::collections::BTreeMap::new();
        for _ in 0..3000 {
            tuples.insert(vec![r.gen_range(0..d), r.gen_range(0..d)], r.gen_range(1..5u64));
        }
        Factor::new(vec![Var(a), Var(b)], tuples.into_iter().collect()).unwrap()
    };
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, d),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::MAX)),
        ],
        vec![mk(0, 1), mk(1, 2), mk(0, 2)],
    )
    .unwrap();
    let seq = insideout(&q).unwrap();
    for threads in [2usize, 4, 8] {
        let par = insideout_par(&q, &ExecPolicy::with_threads(threads)).unwrap();
        assert_eq!(par.factor, seq.factor, "threads {threads}");
    }
}
