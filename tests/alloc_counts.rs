//! Allocation-budget tests for the flat-row InsideOut hot path.
//!
//! The elimination pipeline (PR 5) claims per-step heap allocations of
//! `O(arity + chunks)` — plus `O(log rows)` amortized buffer doubling — where
//! it used to allocate a `Vec<u32>` per emitted row. A counting global
//! allocator ([`faq_testalloc::CountingAllocator`]) verifies the claim on a
//! workload big enough that the old per-row behaviour would blow the budget
//! by two orders of magnitude.
//!
//! The budgets below are deliberately loose (×4-ish headroom over measured
//! counts) so they don't flake across allocator or std versions, while
//! staying far below one allocation per output row.

use faq::core::{insideout_par_with_order, insideout_with_order, ExecPolicy, FaqQuery, Planner};
use faq::factor::{DeltaFactor, DeltaOp, Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::{CountSumProd, SingleSemiringDomain};
use faq_testalloc::{allocation_count, CountingAllocator};
use rand::{rngs::StdRng, Rng, SeedableRng};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A triangle join (all variables free: guard steps + output join) over a
/// random graph — the hot-path shape the benchmarks measure.
fn triangle(m: usize) -> FaqQuery<SingleSemiringDomain<CountSumProd>> {
    let mut rng = StdRng::seed_from_u64(97);
    let n = 64u32;
    let mut edges = std::collections::BTreeSet::new();
    while edges.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.insert((a, b));
        }
    }
    let tuples: Vec<(Vec<u32>, u64)> = edges.iter().map(|&(a, b)| (vec![a, b], 1)).collect();
    let fac = |x: u32, y: u32| {
        Factor::new(vec![Var(x), Var(y)], tuples.iter().map(|(t, v)| (t.clone(), *v)).collect())
            .unwrap()
    };
    FaqQuery::new(
        SingleSemiringDomain::new(CountSumProd),
        Domains::uniform(3, n),
        vec![Var(0), Var(1), Var(2)],
        vec![],
        vec![fac(0, 1), fac(1, 2), fac(0, 2)],
    )
    .unwrap()
}

#[test]
fn elimination_allocates_per_step_not_per_row() {
    let q = triangle(1500);
    let sigma = q.ordering();
    // Pre-build the input indexes (the serving path does this in `prepare`);
    // clones carry built tries, so the runs below never pay the input build.
    for f in &q.factors {
        f.trie();
    }

    // Warm once outside the measurement (lazy statics, thread-local setup).
    let warm = insideout_with_order(&q, &sigma).unwrap();
    let total_rows: usize = q.factors.iter().map(|f| f.len()).sum::<usize>() + warm.factor.len();
    assert!(total_rows > 4_000, "workload too small to witness O(rows) allocation");

    let before = allocation_count();
    let out = insideout_with_order(&q, &sigma).unwrap();
    let sequential_allocs = allocation_count() - before;
    assert_eq!(out.factor, warm.factor);

    // The old pipeline allocated ≥ 1 Vec per emitted row (plus tuple vectors
    // per projection and a full re-sort buffer); the flat pipeline's budget
    // is per *step*, not per row. 3 guard steps + 1 output join over >17k
    // rows measured ~510 allocations (mostly amortized buffer doubling);
    // budget 1024 ≪ total_rows.
    assert!(
        (sequential_allocs as usize) < 1024,
        "sequential run allocated {sequential_allocs} times for {total_rows} rows"
    );
    assert!((sequential_allocs as usize) < total_rows / 4);

    // Chunked execution adds O(chunks) per step (worker builders, spawn
    // bookkeeping), not O(rows).
    let policy = ExecPolicy::sequential().threads(4).min_chunk_rows(64);
    let before = allocation_count();
    let par = insideout_par_with_order(&q, &sigma, &policy).unwrap();
    let parallel_allocs = allocation_count() - before;
    assert_eq!(par.factor, warm.factor);
    assert!(
        (parallel_allocs as usize) < 2048,
        "parallel run allocated {parallel_allocs} times for {total_rows} rows"
    );
}

#[test]
fn delta_path_allocates_within_budget() {
    let q = triangle(1500);
    let mut prepared = Planner::sequential().prepare(&q).unwrap();
    let total_rows: usize = q.factors.iter().map(|f| f.len()).sum::<usize>()
        + prepared.evaluate().unwrap().factor.len();

    // Prime the trace cache (a full evaluation) outside the measurement.
    let schema = vec![Var(0), Var(1)];
    let prime = DeltaFactor::new(schema.clone(), vec![(vec![63, 62], DeltaOp::Put(1u64))]).unwrap();
    prepared.apply_delta(0, &prime).unwrap();

    // A 1-row point update must not re-materialize O(rows) worth of
    // allocations: the replayed steps run restricted to the touched anchor
    // ranges (or as single whole-step joins), splicing into cached
    // intermediates with reserve-once builders — the budget is O(steps ×
    // (arity + log rows)), orders of magnitude below one per row.
    let one_row = DeltaFactor::new(schema, vec![(vec![62, 61], DeltaOp::Put(1u64))]).unwrap();
    let before = allocation_count();
    let out = prepared.apply_delta(0, &one_row).unwrap();
    let delta_allocs = allocation_count() - before;
    assert!(
        (delta_allocs as usize) < 4096,
        "1-row delta allocated {delta_allocs} times over {total_rows} rows"
    );
    assert!((delta_allocs as usize) < total_rows / 4);

    // And it computed the right thing: bit-identical to a fresh run.
    assert_eq!(out.factor, prepared.evaluate().unwrap().factor);
}
