//! Width-completeness of LinEx(P) (paper Proposition 6.11, Theorem 6.12,
//! Corollary 6.14): every EVO-accepted ordering has the same faqw as *some*
//! linear extension of the precedence poset — so optimizing over LinEx loses
//! nothing. Checked exhaustively on randomized small shapes.

use faq::core::evo::{is_equivalent_ordering, linear_extensions};
use faq::core::width::faqw_of_ordering;
use faq::core::{QueryShape, Tag};
use faq::hypergraph::{Var, VarSet};
use faq::semiring::AggId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SUM: Tag = Tag::Semiring(AggId(0));
const MAX: Tag = Tag::Semiring(AggId(1));

fn permutations(ids: &[u32]) -> Vec<Vec<Var>> {
    fn rec(arr: &mut Vec<Var>, k: usize, out: &mut Vec<Vec<Var>>) {
        if k == arr.len() {
            out.push(arr.clone());
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            rec(arr, k + 1, out);
            arr.swap(k, i);
        }
    }
    let mut arr: Vec<Var> = ids.iter().map(|&i| Var(i)).collect();
    let mut out = Vec::new();
    rec(&mut arr, 0, &mut out);
    out
}

fn random_shape(rng: &mut StdRng, n: u32, with_products: bool) -> QueryShape {
    let seq: Vec<(Var, Tag)> = (0..n)
        .map(|i| {
            let tag = match rng.gen_range(0..if with_products { 3 } else { 2 }) {
                0 => SUM,
                1 => MAX,
                _ => Tag::Product,
            };
            (Var(i), tag)
        })
        .collect();
    let mut edges: Vec<VarSet> = Vec::new();
    // A random spanning-ish structure plus extras.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        edges.push([Var(i), Var(j)].into_iter().collect());
    }
    for _ in 0..rng.gen_range(0..3) {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push([Var(a), Var(b)].into_iter().collect());
        }
    }
    QueryShape {
        seq,
        edges,
        mul_idempotent: with_products && rng.gen_bool(0.5),
        closed_ops: if rng.gen_bool(0.5) {
            [AggId(1)].into_iter().collect()
        } else {
            Default::default()
        },
    }
}

/// Every linear extension is EVO-accepted (soundness), and every EVO-accepted
/// permutation has a faqw matched by some linear extension (width
/// completeness).
#[test]
fn linex_is_sound_and_width_complete() {
    let mut rng = StdRng::seed_from_u64(612);
    let mut interesting = 0;
    for round in 0..60 {
        let n = rng.gen_range(3..6u32);
        let shape = random_shape(&mut rng, n, true);
        let (linex, complete) = linear_extensions(&shape, 5_000);
        assert!(complete, "round {round}");
        assert!(!linex.is_empty());

        // Soundness: LinEx ⊆ accepted.
        for sigma in &linex {
            assert!(
                is_equivalent_ordering(&shape, sigma),
                "round {round}: LinEx member {sigma:?} rejected for {shape:?}"
            );
        }

        // Width completeness: each accepted ordering's width appears in LinEx.
        let linex_widths: Vec<f64> =
            linex.iter().map(|s| faqw_of_ordering(&shape, s).unwrap()).collect();
        let ids: Vec<u32> = (0..n).collect();
        for pi in permutations(&ids) {
            if !is_equivalent_ordering(&shape, &pi) {
                continue;
            }
            let w = faqw_of_ordering(&shape, &pi).unwrap();
            let matched = linex_widths.iter().any(|lw| (lw - w).abs() < 1e-9);
            assert!(
                matched,
                "round {round}: accepted {pi:?} has width {w} not achieved by any \
                 LinEx member ({linex_widths:?}) for {shape:?}"
            );
            interesting += 1;
        }
    }
    assert!(interesting > 100, "exercised only {interesting} accepted orderings");
}

/// The optimal width over accepted orderings equals the optimal width over
/// LinEx (Corollary 6.14 / 6.28 as implemented).
#[test]
fn optimum_over_evo_equals_optimum_over_linex() {
    let mut rng = StdRng::seed_from_u64(613);
    for round in 0..40 {
        let n = rng.gen_range(3..6u32);
        let shape = random_shape(&mut rng, n, false);
        let (linex, _) = linear_extensions(&shape, 5_000);
        let best_linex = linex
            .iter()
            .map(|s| faqw_of_ordering(&shape, s).unwrap())
            .fold(f64::INFINITY, f64::min);
        let ids: Vec<u32> = (0..n).collect();
        let best_evo = permutations(&ids)
            .into_iter()
            .filter(|pi| is_equivalent_ordering(&shape, pi))
            .map(|pi| faqw_of_ordering(&shape, &pi).unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (best_linex - best_evo).abs() < 1e-9,
            "round {round}: LinEx optimum {best_linex} vs EVO optimum {best_evo} for {shape:?}"
        );
    }
}
