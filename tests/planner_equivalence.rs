//! Property tests: cost-based plans are a pure performance choice — outputs
//! are bit-identical to the sequential InsideOut engine — plus the planner
//! edge-case suite and the degenerate-query panic regressions.
//!
//! Three layers:
//!
//! 1. **Proptests** — random triangle-shaped queries over the counting,
//!    max-tropical, and boolean semirings: `PreparedQuery::evaluate` under
//!    planners with threads ∈ {1, 2, 4} equals `insideout` bit for bit
//!    (mirroring `tests/trie_equivalence.rs`).
//! 2. **Edge cases** — empty factors, single-row factors, single-variable
//!    queries, and repeated evaluation/updating through one handle.
//! 3. **Regressions** — the two former panic paths (a free variable covered
//!    by no edge; all-nullary inputs) now surface as
//!    `FaqError::Uncoverable` from the width API while evaluation —
//!    sequential, parallel, and planned — keeps working.

use faq::core::width::{faqw_exact, faqw_of_ordering};
use faq::core::{insideout, insideout_par, naive_eval};
use faq::core::{ExecPolicy, FaqError, FaqQuery, PlanCache, Planner, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::{AggDomain, BoolDomain, CountDomain, MaxPlus, SingleSemiringDomain};
use proptest::prelude::*;

const DOM: u32 = 4;

/// Planners under test: sequential plus parallel with an adversarial chunk
/// floor, so thread-count plan choices actually engage on tiny inputs.
fn planners() -> Vec<Planner> {
    [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let mut p = Planner::with_threads(threads);
            p.min_chunk_rows = 1;
            p
        })
        .collect()
}

/// Assert every planner's prepared evaluation equals plain `insideout`.
fn assert_plan_equivalent<D: AggDomain + Clone + Sync>(q: &FaqQuery<D>) {
    let reference = insideout(q).unwrap();
    for planner in planners() {
        let prepared = planner.prepare(q).unwrap();
        let out = prepared.evaluate().unwrap();
        assert_eq!(
            out.factor,
            reference.factor,
            "plan diverged under threads={} (order {:?})",
            planner.threads,
            prepared.plan().order
        );
        // Serving path: a second evaluation through the same handle is
        // equally exact.
        assert_eq!(prepared.evaluate().unwrap().factor, reference.factor);
    }
}

/// Decode a support bitmap into factor tuples over `(a, b)`.
fn pairs_factor<E: Clone + PartialEq + std::fmt::Debug + Send + Sync>(
    a: u32,
    b: u32,
    support: &[u32],
    mut value_at: impl FnMut(usize) -> E,
) -> Factor<E> {
    let tuples: Vec<(Vec<u32>, E)> = support
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0)
        .map(|(i, _)| (vec![i as u32 / DOM, i as u32 % DOM], value_at(i)))
        .collect();
    Factor::new(vec![Var(a), Var(b)], tuples).unwrap()
}

/// The triangle-shaped query skeleton shared by the three families.
fn skeleton(
    free: usize,
    aggs: &[usize],
    pick: impl Fn(usize) -> VarAgg,
) -> (Vec<Var>, Vec<(Var, VarAgg)>) {
    let free_vars: Vec<Var> = (0..free as u32).map(Var).collect();
    let bound: Vec<(Var, VarAgg)> = (free..3).map(|i| (Var(i as u32), pick(aggs[i]))).collect();
    (free_vars, bound)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counting semiring: sum / max / product aggregate mixes.
    #[test]
    fn counting_plans_equal_insideout(
        s01 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..3, 3),
        free in 0usize..3,
    ) {
        let f01 = pairs_factor(0, 1, &s01, |i| s01[i] as u64);
        let f12 = pairs_factor(1, 2, &s12, |i| s12[i] as u64);
        let f02 = pairs_factor(0, 2, &s02, |i| s02[i] as u64);
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(CountDomain::SUM),
            1 => VarAgg::Semiring(CountDomain::MAX),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12, f02],
        ).unwrap();
        assert_plan_equivalent(&q);
    }

    /// Max-tropical semiring on an f64 carrier: bit-identity, not tolerance.
    #[test]
    fn max_tropical_plans_equal_insideout(
        s01 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..2, 3),
        free in 0usize..3,
    ) {
        let val = |s: &[u32]| {
            let s = s.to_vec();
            move |i: usize| s[i] as f64 * 0.25
        };
        let f01 = pairs_factor(0, 1, &s01, val(&s01));
        let f12 = pairs_factor(1, 2, &s12, val(&s12));
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(SingleSemiringDomain::<MaxPlus>::OP),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            SingleSemiringDomain::new(MaxPlus),
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12],
        ).unwrap();
        assert_plan_equivalent(&q);
    }

    /// Boolean semiring: ∃ / ∀ quantifier mixes.
    #[test]
    fn boolean_plans_equal_insideout(
        s01 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..2, 3),
        free in 0usize..3,
    ) {
        let f01 = pairs_factor(0, 1, &s01, |_| true);
        let f12 = pairs_factor(1, 2, &s12, |_| true);
        let f02 = pairs_factor(0, 2, &s02, |_| true);
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(BoolDomain::OR),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            BoolDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12, f02],
        ).unwrap();
        assert_plan_equivalent(&q);
    }
}

// ---- Edge cases ------------------------------------------------------------

#[test]
fn empty_factor_plans_to_empty_output() {
    let empty = Factor::<u64>::new(vec![Var(0), Var(1)], vec![]).unwrap();
    let other =
        Factor::new(vec![Var(1), Var(2)], vec![(vec![0, 0], 2u64), (vec![1, 2], 3)]).unwrap();
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, DOM),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::SUM)),
        ],
        vec![empty, other],
    )
    .unwrap();
    assert_plan_equivalent(&q);
    let out = Planner::sequential().prepare(&q).unwrap().evaluate().unwrap();
    assert!(out.factor.is_empty());
}

#[test]
fn single_row_factors_plan_and_evaluate() {
    let f01 = Factor::new(vec![Var(0), Var(1)], vec![(vec![1, 2], 5u64)]).unwrap();
    let f12 = Factor::new(vec![Var(1), Var(2)], vec![(vec![2, 3], 7u64)]).unwrap();
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, DOM),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::MAX)),
        ],
        vec![f01, f12],
    )
    .unwrap();
    assert_plan_equivalent(&q);
    assert_eq!(naive_eval(&q), insideout(&q).unwrap().factor);
}

#[test]
fn single_variable_queries_plan_and_evaluate() {
    // Bound-only: a scalar aggregate over one unary factor.
    let f = Factor::new(vec![Var(0)], vec![(vec![0], 2u64), (vec![2], 3)]).unwrap();
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(1, DOM),
        vec![],
        vec![(Var(0), VarAgg::Semiring(CountDomain::SUM))],
        vec![f.clone()],
    )
    .unwrap();
    assert_plan_equivalent(&q);
    let out = Planner::sequential().prepare(&q).unwrap().evaluate().unwrap();
    assert_eq!(out.scalar(), Some(&5));

    // Free-only: the same factor listed as output.
    let qf = FaqQuery::new(CountDomain, Domains::uniform(1, DOM), vec![Var(0)], vec![], vec![f])
        .unwrap();
    assert_plan_equivalent(&qf);
}

#[test]
fn thread_counts_choose_plans_not_results() {
    // Large enough that a parallel planner actually schedules chunked steps.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut r = StdRng::seed_from_u64(77);
    let d = 32u32;
    let mut mk = |a: u32, b: u32| {
        let mut tuples = std::collections::BTreeMap::new();
        for _ in 0..1500 {
            tuples.insert(vec![r.gen_range(0..d), r.gen_range(0..d)], r.gen_range(1..5u64));
        }
        Factor::new(vec![Var(a), Var(b)], tuples.into_iter().collect()).unwrap()
    };
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, d),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::MAX)),
        ],
        vec![mk(0, 1), mk(1, 2), mk(0, 2)],
    )
    .unwrap();
    let seq_plan = Planner::sequential().prepare(&q).unwrap();
    let par_plan = Planner::with_threads(4).prepare(&q).unwrap();
    assert!(seq_plan.plan().steps.iter().all(|s| s.policy.threads == 1));
    assert!(
        par_plan.plan().steps.iter().any(|s| s.policy.threads > 1)
            || par_plan.plan().output.threads > 1,
        "a 4-thread planner should schedule at least one parallel step on 1500-row inputs"
    );
    assert_eq!(seq_plan.evaluate().unwrap().factor, par_plan.evaluate().unwrap().factor);
    assert_eq!(seq_plan.evaluate().unwrap().factor, insideout(&q).unwrap().factor);
}

#[test]
fn plan_cache_serves_many_instances() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let cache = PlanCache::new();
    let planner = Planner::sequential();
    let mut r = StdRng::seed_from_u64(5);
    let mut reference = None;
    for round in 0..4 {
        // Exactly 10 rows per factor so every round lands in the same size
        // class (plans are keyed by schema + log₂ size bucket).
        let mut mk = |a: u32, b: u32| {
            let mut tuples = std::collections::BTreeMap::new();
            while tuples.len() < 10 {
                tuples.insert(vec![r.gen_range(0..DOM), r.gen_range(0..DOM)], r.gen_range(1..5u64));
            }
            Factor::new(vec![Var(a), Var(b)], tuples.into_iter().collect()).unwrap()
        };
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, DOM),
            vec![Var(0)],
            vec![
                (Var(1), VarAgg::Semiring(CountDomain::SUM)),
                (Var(2), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![mk(0, 1), mk(1, 2), mk(0, 2)],
        )
        .unwrap();
        let prepared = cache.prepare(&planner, &q).unwrap();
        assert_eq!(prepared.evaluate().unwrap().factor, insideout(&q).unwrap().factor);
        let order = prepared.plan().order.clone();
        match &reference {
            None => reference = Some(order),
            Some(o) => assert_eq!(*o, order, "round {round}: cached plan must be reused"),
        }
    }
    assert_eq!(cache.len(), 1, "one schema → one plan");
}

// ---- Panic-path regressions (degenerate queries) ---------------------------

/// A free variable covered by no edge: `ϕ(x0, x1) = ψ(x0)` with `x1` free.
fn free_var_no_edge_query() -> FaqQuery<CountDomain> {
    let f = Factor::new(vec![Var(0)], vec![(vec![0], 2u64), (vec![1], 3)]).unwrap();
    FaqQuery::new(CountDomain, Domains::uniform(2, 3), vec![Var(0), Var(1)], vec![], vec![f])
        .unwrap()
}

/// All-nullary inputs: `ϕ = Σ_{x0} c₁ · c₂` — every edge is empty.
fn all_nullary_query() -> FaqQuery<CountDomain> {
    FaqQuery::new(
        CountDomain,
        Domains::uniform(1, 3),
        vec![],
        vec![(Var(0), VarAgg::Semiring(CountDomain::SUM))],
        vec![Factor::nullary(Some(2u64)), Factor::nullary(Some(3u64))],
    )
    .unwrap()
}

#[test]
fn free_variable_in_no_edge_errs_instead_of_panicking() {
    let q = free_var_no_edge_query();
    let shape = q.shape();
    // The width API returns Err(Uncoverable) — previously a panic in
    // `RhoStar::eval` ("U-set not coverable by the query's edges").
    assert!(matches!(faqw_exact(&shape, 100), Err(FaqError::Uncoverable(_))));
    assert!(matches!(faqw_of_ordering(&shape, &[Var(0), Var(1)]), Err(FaqError::Uncoverable(_))));
    // Evaluation is well-defined: the free variable iterates its domain.
    let expect = naive_eval(&q);
    assert_eq!(insideout(&q).unwrap().factor, expect);
    for threads in [1usize, 2, 4] {
        let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(1);
        assert_eq!(insideout_par(&q, &policy).unwrap().factor, expect);
    }
    // The planner degrades gracefully (cost falls back to domain products)
    // and records that no width is defined.
    let prepared = Planner::with_threads(4).prepare(&q).unwrap();
    assert_eq!(prepared.plan().width, None);
    assert_eq!(prepared.evaluate().unwrap().factor, expect);
}

#[test]
fn all_nullary_inputs_err_instead_of_panicking() {
    let q = all_nullary_query();
    let shape = q.shape();
    assert!(matches!(faqw_exact(&shape, 100), Err(FaqError::Uncoverable(_))));
    assert!(matches!(faqw_of_ordering(&shape, &[Var(0)]), Err(FaqError::Uncoverable(_))));
    // Σ_{x0∈Dom(3)} 2·3 = 18, from every engine and from a plan.
    assert_eq!(insideout(&q).unwrap().scalar(), Some(&18));
    for threads in [1usize, 4] {
        let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(1);
        assert_eq!(insideout_par(&q, &policy).unwrap().scalar(), Some(&18));
    }
    let prepared = Planner::with_threads(4).prepare(&q).unwrap();
    assert_eq!(prepared.plan().width, None);
    assert_eq!(prepared.evaluate().unwrap().scalar(), Some(&18));
}
