//! FAQ composition (paper §8.2 / §8.5): the output of one FAQ instance feeds
//! another as an input factor. Materializing the inner instance and running
//! the outer one must agree with the monolithic flat query, and the composed
//! hypergraph's width behaves per Proposition 8.5.

use faq::core::{insideout, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::compose::{compose, star_of_stars_gap};
use faq::hypergraph::ordering::fhtw;
use faq::hypergraph::widths::rho_star;
use faq::hypergraph::Var;
use faq::semiring::CountDomain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_factor(rng: &mut StdRng, vars: &[Var], dom: u32) -> Factor<u64> {
    let mut tuples = Vec::new();
    let mut cur = vec![0u32; vars.len()];
    loop {
        if rng.gen_bool(0.6) {
            tuples.push((cur.clone(), rng.gen_range(1..4u64)));
        }
        let mut i = vars.len();
        let done = loop {
            if i == 0 {
                break true;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < dom {
                break false;
            }
            cur[i] = 0;
        };
        if done {
            break;
        }
    }
    Factor::new(vars.to_vec(), tuples).unwrap()
}

/// Inner instance ψ'(x0, x2) = Σ_{x1} R(x0,x1) S(x1,x2); outer instance
/// ϕ = Σ_{x0,x2,x3} ψ'(x0,x2) T(x2,x3). Composition ≡ the flat 4-variable
/// query (associativity of Σ/Π — the §8.2 reduction).
#[test]
fn composed_evaluation_equals_flat_query() {
    let mut rng = StdRng::seed_from_u64(85);
    for _ in 0..15 {
        let dom = 3u32;
        let r = random_factor(&mut rng, &[Var(0), Var(1)], dom);
        let s = random_factor(&mut rng, &[Var(1), Var(2)], dom);
        let t = random_factor(&mut rng, &[Var(2), Var(3)], dom);

        // Inner: free (x0, x2), bound x1.
        let inner = FaqQuery::new(
            CountDomain,
            Domains::uniform(4, dom),
            vec![Var(0), Var(2)],
            vec![(Var(1), VarAgg::Semiring(CountDomain::SUM))],
            vec![r.clone(), s.clone()],
        )
        .unwrap();
        let psi_prime = insideout(&inner).unwrap().factor;

        // Outer: scalar over ψ' and T.
        let outer = FaqQuery::new(
            CountDomain,
            Domains::uniform(4, dom),
            vec![],
            vec![
                (Var(0), VarAgg::Semiring(CountDomain::SUM)),
                (Var(2), VarAgg::Semiring(CountDomain::SUM)),
                (Var(3), VarAgg::Semiring(CountDomain::SUM)),
            ],
            vec![psi_prime, t.clone()],
        )
        .unwrap();
        let composed = insideout(&outer).unwrap().scalar().copied().unwrap_or(0);

        // Flat query.
        let flat = FaqQuery::new(
            CountDomain,
            Domains::uniform(4, dom),
            vec![],
            (0..4).map(|i| (Var(i), VarAgg::Semiring(CountDomain::SUM))).collect(),
            vec![r, s, t],
        )
        .unwrap();
        let expect = insideout(&flat).unwrap().scalar().copied().unwrap_or(0);
        assert_eq!(composed, expect);
    }
}

/// Proposition 8.5 at the width level: the composed hypergraph's fhtw is
/// bounded by `fhtw(H⁰) · max_e ρ*(H¹_e)` on random compositions.
#[test]
fn proposition_8_5_on_random_compositions() {
    let mut rng = StdRng::seed_from_u64(86);
    for _ in 0..10 {
        // Outer: a path of 3-ary edges; inner: random decompositions of each.
        let n = 6u32;
        let mut outer = faq::hypergraph::Hypergraph::new();
        let e1 = outer.add_edge([Var(0), Var(1), Var(2)]);
        let e2 = outer.add_edge([Var(2), Var(3), Var(4)]);
        let e3 = outer.add_edge([Var(4), Var(5), Var(0)]);
        let _ = (e1, e2, e3);
        let mut inner = Vec::new();
        for e in outer.edges() {
            let vs: Vec<Var> = e.iter().copied().collect();
            let mut hi = faq::hypergraph::Hypergraph::new();
            // Random binary edges covering the triple.
            hi.add_edge([vs[0], vs[1]]);
            hi.add_edge([vs[1], vs[2]]);
            if rng.gen_bool(0.5) {
                hi.add_edge([vs[0], vs[2]]);
            }
            inner.push(hi);
        }
        let comp = compose(&outer, &inner);
        let lhs = fhtw(&comp, 12).width;
        let outer_w = fhtw(&outer, 12).width;
        let max_rho: f64 =
            inner.iter().map(|h| rho_star(h, &h.vertices().clone())).fold(0.0, f64::max);
        assert!(lhs <= outer_w * max_rho + 1e-6, "fhtw {lhs} > {outer_w} × {max_rho}");
        let _ = n;
    }
}

/// The Lemma 8.7 gap family again, at a size the exact search still handles,
/// exercised through the public facade.
#[test]
fn lemma_8_7_gap_through_facade() {
    let (outer, inner) = star_of_stars_gap(4);
    let comp = compose(&outer, &inner);
    let w = fhtw(&comp, 12).width;
    assert!(w >= 2.0 - 1e-9, "gap instance width {w}");
    assert!((fhtw(&outer, 12).width - 1.0).abs() < 1e-9);
}
