//! Differential tests: `PreparedQuery::apply_delta` is bit-identical to
//! merging the delta by hand, swapping the factor in with `update_factor`,
//! and re-evaluating from scratch.
//!
//! Three proptest families — counting (sum/max/product aggregate mixes),
//! max-tropical, boolean — each checked under planners with threads ∈
//! {1, 2, 4}, plus deterministic adversarial cases: the empty delta, a delta
//! touching every row, deltas against an empty factor, repeated deltas to
//! one slot, interleaved deltas across slots, and the `update_factor`
//! rollback regression (failed updates leave cached intermediates intact).

use faq::core::{FaqError, FaqQuery, Planner, PreparedQuery, VarAgg};
use faq::factor::{DeltaFactor, DeltaOp, Domains, Factor, SpillConfig};
use faq::hypergraph::Var;
use faq::semiring::{AggDomain, AggId, BoolDomain, CountDomain, MaxPlus, SingleSemiringDomain};
use proptest::prelude::*;

const DOM: u32 = 4;

/// One delta batch over a counting factor: sorted keys with their ops.
type DeltaEntries = Vec<(Vec<u32>, DeltaOp<u64>)>;

/// Planners under test: sequential plus parallel with an adversarial chunk
/// floor, so multi-threaded plans actually engage on tiny inputs.
fn planners() -> Vec<Planner> {
    [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let mut p = Planner::with_threads(threads);
            p.min_chunk_rows = 1;
            p
        })
        .collect()
}

/// Apply `delta` incrementally on `prepared` and from scratch on `oracle`
/// (manual merge + `update_factor` + `evaluate`), asserting bit-identical
/// output factors.
fn assert_delta_matches<D: AggDomain + Clone + Sync>(
    prepared: &mut PreparedQuery<D>,
    oracle: &mut PreparedQuery<D>,
    slot: usize,
    delta: &DeltaFactor<D::E>,
) {
    let incr = prepared.apply_delta(slot, delta).unwrap();
    let dom = oracle.query().domain.clone();
    let order = oracle.plan().order.clone();
    let aligned = delta.align_to(&order);
    let (merged, _) = aligned.apply_to(
        &oracle.query().factors[slot],
        |a, b| dom.add(AggId(0), a, b),
        |x| dom.is_zero(x),
    );
    oracle.update_factor(slot, merged).unwrap();
    let fresh = oracle.evaluate().unwrap();
    assert_eq!(incr.factor, fresh.factor, "incremental output diverged from recompute");
}

/// Run one delta twice (deltas accumulate) against every planner.
fn check_delta_family<D: AggDomain + Clone + Sync>(
    q: &FaqQuery<D>,
    slot: usize,
    entries: Vec<(Vec<u32>, DeltaOp<D::E>)>,
) {
    let delta = DeltaFactor::new(q.factors[slot].schema().to_vec(), entries).unwrap();
    for planner in planners() {
        let mut prepared = planner.prepare(q).unwrap();
        let mut oracle = planner.prepare(q).unwrap();
        assert_delta_matches(&mut prepared, &mut oracle, slot, &delta);
        // A second application of the same batch accumulates on the cached
        // intermediates of the first.
        assert_delta_matches(&mut prepared, &mut oracle, slot, &delta);
    }
}

/// Decode a support bitmap into factor tuples over `(a, b)`.
fn pairs_factor<E: Clone + PartialEq + std::fmt::Debug + Send + Sync>(
    a: u32,
    b: u32,
    support: &[u32],
    mut value_at: impl FnMut(usize) -> E,
) -> Factor<E> {
    let tuples: Vec<(Vec<u32>, E)> = support
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0)
        .map(|(i, _)| (vec![i as u32 / DOM, i as u32 % DOM], value_at(i)))
        .collect();
    Factor::new(vec![Var(a), Var(b)], tuples).unwrap()
}

/// The triangle-shaped query skeleton shared by the families.
fn skeleton(
    free: usize,
    aggs: &[usize],
    pick: impl Fn(usize) -> VarAgg,
) -> (Vec<Var>, Vec<(Var, VarAgg)>) {
    let free_vars: Vec<Var> = (0..free as u32).map(Var).collect();
    let bound: Vec<(Var, VarAgg)> = (free..3).map(|i| (Var(i as u32), pick(aggs[i]))).collect();
    (free_vars, bound)
}

/// Strategy: raw delta entries (key, kind, value-seed) with distinct keys.
fn delta_entries() -> impl Strategy<Value = Vec<(u32, u32, usize, u64)>> {
    proptest::collection::vec((0u32..DOM, 0u32..DOM, 0usize..3, 0u64..5), 0..8).prop_map(|raw| {
        // Deduplicate keys (last write wins) — DeltaFactor rejects duplicates.
        let mut by_key = std::collections::BTreeMap::new();
        for (a, b, kind, v) in raw {
            by_key.insert((a, b), (kind, v));
        }
        by_key.into_iter().map(|((a, b), (kind, v))| (a, b, kind, v)).collect()
    })
}

fn delta_ops<E>(
    raw: &[(u32, u32, usize, u64)],
    mut value_of: impl FnMut(u64) -> E,
) -> Vec<(Vec<u32>, DeltaOp<E>)> {
    raw.iter()
        .map(|&(a, b, kind, v)| {
            let op = match kind {
                0 => DeltaOp::Put(value_of(v)),
                1 => DeltaOp::Merge(value_of(v)),
                _ => DeltaOp::Delete,
            };
            (vec![a, b], op)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counting semiring, sum / max / product aggregate mixes.
    #[test]
    fn counting_delta_equals_recompute(
        s01 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        free in 0usize..=3,
        aggs in proptest::collection::vec(0usize..3, 3),
        slot in 0usize..3,
        raw in delta_entries(),
    ) {
        let pick = |i: usize| match i {
            0 => VarAgg::Semiring(CountDomain::SUM),
            1 => VarAgg::Semiring(CountDomain::MAX),
            _ => VarAgg::Product,
        };
        let (free_vars, bound) = skeleton(free, &aggs, pick);
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![
                pairs_factor(0, 1, &s01, |i| i as u64 % 3 + 1),
                pairs_factor(1, 2, &s12, |i| i as u64 % 4 + 1),
                pairs_factor(0, 2, &s02, |i| i as u64 % 2 + 1),
            ],
        ).unwrap();
        check_delta_family(&q, slot, delta_ops(&raw, |v| v));
    }

    /// Max-tropical semiring (f64 carrier): restricted replay must stay
    /// bit-identical even for floating-point values.
    #[test]
    fn tropical_delta_equals_recompute(
        s01 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        free in 0usize..=3,
        slot in 0usize..3,
        raw in delta_entries(),
    ) {
        let dom = SingleSemiringDomain::new(MaxPlus);
        let (free_vars, bound) = skeleton(free, &[0, 0, 0], |_| VarAgg::Semiring(AggId(0)));
        let q = FaqQuery::new(
            dom,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![
                pairs_factor(0, 1, &s01, |i| i as f64 * 0.5),
                pairs_factor(1, 2, &s12, |i| i as f64 - 3.0),
                pairs_factor(0, 2, &s02, |i| (i % 5) as f64),
            ],
        ).unwrap();
        check_delta_family(&q, slot, delta_ops(&raw, |v| v as f64 - 1.0));
    }

    /// Boolean semiring (conjunctive queries with projections).
    #[test]
    fn boolean_delta_equals_recompute(
        s01 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        free in 0usize..=3,
        slot in 0usize..3,
        raw in delta_entries(),
    ) {
        let (free_vars, bound) =
            skeleton(free, &[0, 0, 0], |_| VarAgg::Semiring(BoolDomain::OR));
        let q = FaqQuery::new(
            BoolDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![
                pairs_factor(0, 1, &s01, |_| true),
                pairs_factor(1, 2, &s12, |_| true),
                pairs_factor(0, 2, &s02, |_| true),
            ],
        ).unwrap();
        check_delta_family(&q, slot, delta_ops(&raw, |_| true));
    }
}

/// An all-free counting triangle over fixed supports — the deterministic
/// workhorse of the adversarial cases.
fn counting_triangle() -> FaqQuery<CountDomain> {
    let dense: Vec<u32> = (0..DOM * DOM).map(|i| u32::from(i % 3 != 1)).collect();
    let sparse: Vec<u32> = (0..DOM * DOM).map(|i| u32::from(i % 5 == 0)).collect();
    let mid: Vec<u32> = (0..DOM * DOM).map(|i| u32::from(i % 2 == 0)).collect();
    FaqQuery::new(
        CountDomain,
        Domains::uniform(3, DOM),
        vec![Var(0), Var(1), Var(2)],
        vec![],
        vec![
            pairs_factor(0, 1, &dense, |i| i as u64 + 1),
            pairs_factor(1, 2, &sparse, |i| i as u64 % 7 + 1),
            pairs_factor(0, 2, &mid, |i| i as u64 % 3 + 1),
        ],
    )
    .unwrap()
}

#[test]
fn empty_delta_serves_cached_output() {
    let q = counting_triangle();
    let mut prepared = Planner::sequential().prepare(&q).unwrap();
    let baseline = prepared.evaluate().unwrap().factor;
    let delta: DeltaFactor<u64> = DeltaFactor::new(vec![Var(0), Var(1)], vec![]).unwrap();
    let out = prepared.apply_delta(0, &delta).unwrap();
    assert_eq!(out.factor, baseline);
    // No replay happened: the stats are empty.
    assert!(out.stats.steps.is_empty());
    assert!(out.stats.output_join.is_none());
    // Deleting absent keys is equally a no-op.
    let absent = DeltaFactor::deletes(vec![Var(0), Var(1)], vec![vec![0, 1], vec![3, 1]]).unwrap();
    assert!(q.factors[0].get(&[0, 1]).is_none());
    let out = prepared.apply_delta(0, &absent).unwrap();
    assert_eq!(out.factor, baseline);
    assert!(out.stats.steps.is_empty());
}

#[test]
fn delta_touching_every_row_equals_recompute() {
    let q = counting_triangle();
    for slot in 0..3 {
        // Rewrite every existing row and add every missing key: a full
        // overwrite of the slot, still served through the delta path.
        let mut entries: DeltaEntries = Vec::new();
        for a in 0..DOM {
            for b in 0..DOM {
                entries.push((vec![a, b], DeltaOp::Put(a as u64 * 10 + b as u64 + 1)));
            }
        }
        check_delta_family(&q, slot, entries);
    }
}

#[test]
fn delta_to_empty_factor_equals_recompute() {
    let mut q = counting_triangle();
    q.factors[0] = Factor::new(vec![Var(0), Var(1)], vec![]).unwrap();
    // Populate the empty factor through deltas alone.
    let entries = vec![
        (vec![0, 0], DeltaOp::Put(2u64)),
        (vec![0, 2], DeltaOp::Put(1)),
        (vec![2, 2], DeltaOp::Merge(3)),
        (vec![3, 1], DeltaOp::Delete),
    ];
    check_delta_family(&q, 0, entries);
}

#[test]
fn repeated_deltas_to_one_slot_accumulate() {
    let q = counting_triangle();
    let planner = Planner::sequential();
    let mut prepared = planner.prepare(&q).unwrap();
    let mut oracle = planner.prepare(&q).unwrap();
    let batches: Vec<DeltaEntries> = vec![
        vec![(vec![1, 1], DeltaOp::Put(5))],
        vec![(vec![1, 1], DeltaOp::Merge(2)), (vec![0, 0], DeltaOp::Delete)],
        vec![(vec![1, 1], DeltaOp::Delete)],
        vec![(vec![0, 0], DeltaOp::Put(7)), (vec![1, 1], DeltaOp::Put(1))],
        vec![(vec![3, 3], DeltaOp::Merge(4))],
    ];
    for entries in batches {
        let delta = DeltaFactor::new(vec![Var(0), Var(1)], entries).unwrap();
        assert_delta_matches(&mut prepared, &mut oracle, 0, &delta);
    }
}

#[test]
fn interleaved_deltas_across_slots_accumulate() {
    let q = counting_triangle();
    for planner in planners() {
        let mut prepared = planner.prepare(&q).unwrap();
        let mut oracle = planner.prepare(&q).unwrap();
        let script: Vec<(usize, DeltaEntries)> = vec![
            (0, vec![(vec![2, 3], DeltaOp::Put(4))]),
            (1, vec![(vec![3, 3], DeltaOp::Put(2)), (vec![0, 0], DeltaOp::Delete)]),
            (2, vec![(vec![2, 2], DeltaOp::Merge(6))]),
            (0, vec![(vec![2, 3], DeltaOp::Delete), (vec![0, 1], DeltaOp::Merge(1))]),
            (2, vec![(vec![2, 2], DeltaOp::Put(1))]),
        ];
        for (slot, entries) in script {
            let schema = q.factors[slot].schema().to_vec();
            let delta = DeltaFactor::new(schema, entries).unwrap();
            assert_delta_matches(&mut prepared, &mut oracle, slot, &delta);
        }
    }
}

#[test]
fn apply_delta_with_explicit_operator() {
    // CountDomain's AggId(1) is max: merging through it keeps the larger
    // multiplicity instead of summing.
    let q = counting_triangle();
    let planner = Planner::sequential();
    let mut prepared = planner.prepare(&q).unwrap();
    let mut oracle = planner.prepare(&q).unwrap();
    let delta =
        DeltaFactor::new(vec![Var(0), Var(1)], vec![(vec![0, 0], DeltaOp::Merge(2u64))]).unwrap();
    let incr = prepared.apply_delta_with(0, &delta, CountDomain::MAX).unwrap();
    let aligned = delta.align_to(&oracle.plan().order.clone());
    let (merged, _) = aligned.apply_to(&oracle.query().factors[0], |a, b| *a.max(b), |x| *x == 0);
    oracle.update_factor(0, merged).unwrap();
    assert_eq!(incr.factor, oracle.evaluate().unwrap().factor);
}

#[test]
fn apply_delta_rejects_bad_inputs_without_mutating() {
    let q = counting_triangle();
    let mut prepared = Planner::sequential().prepare(&q).unwrap();
    let baseline = prepared.evaluate().unwrap().factor;

    // Slot out of range.
    let d = DeltaFactor::new(vec![Var(0), Var(1)], vec![(vec![0, 0], DeltaOp::Delete)]).unwrap();
    assert!(prepared.apply_delta(9, &d).is_err());

    // Schema mismatch names the slot and a symmetric-difference variable.
    let bad = DeltaFactor::new(vec![Var(0), Var(2)], vec![(vec![0, 0], DeltaOp::Delete)]).unwrap();
    match prepared.apply_delta(0, &bad) {
        Err(FaqError::FactorSchemaMismatch { slot, var }) => {
            assert_eq!(slot, 0);
            assert!(var == Var(1) || var == Var(2));
        }
        other => panic!("expected FactorSchemaMismatch, got {other:?}"),
    }
    let msg = prepared.apply_delta(0, &bad).unwrap_err().to_string();
    assert!(msg.contains("slot 0"), "error must name the slot: {msg}");

    // Key outside the domain.
    let oob =
        DeltaFactor::new(vec![Var(0), Var(1)], vec![(vec![DOM, 0], DeltaOp::Put(1u64))]).unwrap();
    assert!(matches!(
        prepared.apply_delta(0, &oob),
        Err(FaqError::ValueOutOfDomain { var: Var(0), value }) if value == DOM
    ));

    // Unknown merge operator.
    assert!(matches!(
        prepared.apply_delta_with(0, &d, AggId(99)),
        Err(FaqError::UnknownAggregate(AggId(99)))
    ));

    // None of the rejected calls disturbed the handle.
    assert_eq!(prepared.evaluate().unwrap().factor, baseline);
}

#[test]
fn failed_update_factor_names_slot_and_keeps_delta_cache() {
    let q = counting_triangle();
    let planner = Planner::sequential();
    let mut prepared = planner.prepare(&q).unwrap();
    let mut oracle = planner.prepare(&q).unwrap();

    // Prime the delta cache.
    let d1 =
        DeltaFactor::new(vec![Var(0), Var(1)], vec![(vec![1, 1], DeltaOp::Put(3u64))]).unwrap();
    assert_delta_matches(&mut prepared, &mut oracle, 0, &d1);

    // A schema-mismatched update must fail, name the slot, and leave both
    // the factors and the cached intermediates untouched.
    let wrong = Factor::new(vec![Var(1), Var(2)], vec![(vec![0, 0], 1u64)]).unwrap();
    match prepared.update_factor(0, wrong) {
        Err(FaqError::FactorSchemaMismatch { slot, .. }) => assert_eq!(slot, 0),
        other => panic!("expected FactorSchemaMismatch, got {other:?}"),
    }
    // An out-of-domain update rolls back and equally preserves the cache.
    let oob = Factor::new(vec![Var(0), Var(1)], vec![(vec![DOM, 0], 1u64)]).unwrap();
    assert!(matches!(prepared.update_factor(0, oob), Err(FaqError::ValueOutOfDomain { .. })));

    // Incremental evaluation keeps working against the (intact) cache.
    let d2 = DeltaFactor::new(
        vec![Var(0), Var(1)],
        vec![(vec![1, 1], DeltaOp::Delete), (vec![2, 0], DeltaOp::Merge(2u64))],
    )
    .unwrap();
    assert_delta_matches(&mut prepared, &mut oracle, 0, &d2);

    // A *successful* update invalidates the cache: the next delta re-primes
    // against the new values and still matches recompute.
    let fresh =
        Factor::new(vec![Var(0), Var(1)], vec![(vec![0, 3], 2u64), (vec![3, 3], 1)]).unwrap();
    prepared.update_factor(0, fresh.clone()).unwrap();
    oracle.update_factor(0, fresh).unwrap();
    let d3 =
        DeltaFactor::new(vec![Var(0), Var(1)], vec![(vec![3, 3], DeltaOp::Merge(5u64))]).unwrap();
    assert_delta_matches(&mut prepared, &mut oracle, 0, &d3);
}

/// Deltas against a *spilled* base splice only the touched chunks: the merge
/// faults in exactly the chunk the delta lands in (cold chunks are shared by
/// metadata), the spliced result stays spilled and bit-identical to merging
/// on an in-memory copy, and the incremental engine path over the spilled
/// slot matches a scratch recompute under every planner.
#[test]
fn spilled_base_delta_splices_only_touched_chunks() {
    let q = counting_triangle();
    let config = SpillConfig {
        chunk_rows: 3,
        level_chunk_entries: 3,
        window_chunks: 2,
        ..SpillConfig::default()
    };
    let spilled = q.factors[0].to_spilled(config);
    let chunks = spilled.spill_stats().unwrap().chunks;
    assert!(chunks >= 3, "base must span several chunks, got {chunks}");

    // Every delta key has a = 0, so only the first chunk is touched: the
    // base's a = 0 rows all sort before chunk 1's first row.
    let entries: Vec<(Vec<u32>, DeltaOp<u64>)> = vec![
        (vec![0, 0], DeltaOp::Merge(7)),
        (vec![0, 1], DeltaOp::Put(9)),
        (vec![0, 3], DeltaOp::Delete),
    ];
    let delta = DeltaFactor::new(vec![Var(0), Var(1)], entries.clone()).unwrap();
    let before = spilled.spill_stats().unwrap().reads;
    let (merged, changed) = delta.apply_to(&spilled, |a, b| a + b, |&x| x == 0);
    let faulted = spilled.spill_stats().unwrap().reads - before;
    assert!(merged.is_spilled(), "splicing a spilled base stays spilled");
    assert_eq!(faulted, 1, "only the touched chunk may fault in");
    let (mem_merged, mem_changed) = delta.apply_to(&q.factors[0], |a, b| a + b, |&x| x == 0);
    assert_eq!(changed, mem_changed, "changed first-column ranges");
    assert_eq!(merged, mem_merged, "spliced listing diverged from the heap merge");

    // End-to-end: the prepared-query delta path over the spilled slot.
    let q_spilled = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, DOM),
        q.free.clone(),
        q.bound.clone(),
        vec![spilled, q.factors[1].clone(), q.factors[2].clone()],
    )
    .unwrap();
    check_delta_family(&q_spilled, 0, entries);
}

/// A storage fault during the spilled splice of `apply_delta` surfaces as a
/// typed [`FaqError::Storage`] with the handle untouched: the factor is not
/// mutated and the cached trace survives (no re-prime I/O on the next call).
/// Validation failures on a spilled slot are equally non-mutating.
#[test]
fn failed_apply_delta_on_spilled_slot_preserves_factor_and_trace() {
    use faq::factor::fault::FaultPlan;

    let q = counting_triangle();
    let config = SpillConfig {
        chunk_rows: 3,
        level_chunk_entries: 3,
        window_chunks: 2,
        ..SpillConfig::default()
    };
    // `prepare` re-aligns misaligned factors into in-memory copies, which
    // would silently de-spill the slot under test: probe the plan order
    // first, then spill the already-aligned factor so the prepared handle
    // keeps the file-chunked listing.
    let planner = Planner::sequential();
    let probe = planner.prepare(&q).unwrap();
    let mut q_spilled = probe.query().clone();
    q_spilled.factors[0] = q_spilled.factors[0].to_spilled(config);

    // Sequential planner: the splice (and its chunk I/O) stays on this
    // thread, where the thread-local fault plan is installed.
    let mut prepared = planner.prepare(&q_spilled).unwrap();
    let mut oracle = planner.prepare(&q_spilled).unwrap();
    assert!(
        prepared.query().factors[0].is_spilled(),
        "the slot under test must stay file-chunked through prepare"
    );

    // Prime the cached trace: an empty delta primes without splicing.
    let empty: DeltaFactor<u64> = DeltaFactor::new(vec![Var(0), Var(1)], vec![]).unwrap();
    let baseline = prepared.apply_delta(0, &empty).unwrap().factor;

    let entries: DeltaEntries = vec![
        (vec![0, 0], DeltaOp::Merge(7)),
        (vec![0, 1], DeltaOp::Put(9)),
        (vec![0, 3], DeltaOp::Delete),
    ];
    let delta = DeltaFactor::new(vec![Var(0), Var(1)], entries).unwrap();

    // Every chunk op fails hard: the splice must rewrite the touched chunk,
    // so the apply aborts before anything is installed and surfaces the
    // typed storage error.
    {
        let _g = FaultPlan::seeded(11).fail_hard(1.0).install_local();
        match prepared.apply_delta(0, &delta) {
            Err(FaqError::Storage(_)) => {}
            other => panic!("expected FaqError::Storage, got {other:?}"),
        }
    }

    // Not mutated: the slot still serves the pre-failure output...
    assert_eq!(prepared.evaluate().unwrap().factor, baseline);
    // ...and the cached trace survived: a no-op delta is served from the
    // cache without a single chunk fault. (A dropped cache would re-prime
    // here with a full traced evaluation over the spilled slot.)
    let reads_before = prepared.query().factors[0].spill_stats().unwrap().reads;
    assert_eq!(prepared.apply_delta(0, &empty).unwrap().factor, baseline);
    assert_eq!(
        prepared.query().factors[0].spill_stats().unwrap().reads,
        reads_before,
        "cached trace must survive the failed apply without re-prime I/O"
    );

    // Validation failures on the spilled slot leave the handle equally
    // undisturbed.
    let oob =
        DeltaFactor::new(vec![Var(0), Var(1)], vec![(vec![DOM, 0], DeltaOp::Put(1u64))]).unwrap();
    assert!(matches!(
        prepared.apply_delta(0, &oob),
        Err(FaqError::ValueOutOfDomain { var: Var(0), value }) if value == DOM
    ));
    let bad = DeltaFactor::new(vec![Var(0), Var(2)], vec![(vec![0, 0], DeltaOp::Delete)]).unwrap();
    assert!(matches!(
        prepared.apply_delta(0, &bad),
        Err(FaqError::FactorSchemaMismatch { slot: 0, .. })
    ));
    assert_eq!(prepared.evaluate().unwrap().factor, baseline);

    // The handle keeps working: the same delta now applies cleanly and
    // matches the scratch recompute.
    assert_delta_matches(&mut prepared, &mut oracle, 0, &delta);
}
