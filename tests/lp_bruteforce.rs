//! Cross-validate the simplex solver against brute-force grid search on
//! random covering LPs (the only LP family the width machinery emits).

use faq::lp::{ConstraintOp, LinearProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force: minimize Σ λ over a fine grid of feasible points. Only an
/// upper-accuracy reference — the simplex optimum must be ≤ grid optimum and
/// feasible itself.
fn grid_optimum(incidence: &[Vec<bool>], steps: u32) -> f64 {
    let ne = incidence[0].len();
    assert!(ne <= 3, "grid search limited to 3 edge variables");
    let mut best = f64::INFINITY;
    let step = 1.0 / steps as f64;
    let mut lambda = vec![0.0f64; ne];
    fn rec(
        incidence: &[Vec<bool>],
        lambda: &mut Vec<f64>,
        i: usize,
        steps: u32,
        step: f64,
        best: &mut f64,
    ) {
        if i == lambda.len() {
            // Feasible?
            for row in incidence {
                let total: f64 =
                    row.iter().zip(lambda.iter()).map(|(&b, &x)| if b { x } else { 0.0 }).sum();
                if total < 1.0 - 1e-12 {
                    return;
                }
            }
            let obj: f64 = lambda.iter().sum();
            if obj < *best {
                *best = obj;
            }
            return;
        }
        for k in 0..=steps {
            lambda[i] = k as f64 * step;
            rec(incidence, lambda, i + 1, steps, step, best);
        }
    }
    rec(incidence, &mut lambda, 0, steps, step, &mut best);
    best
}

#[test]
fn simplex_beats_or_matches_grid_on_random_covers() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut solved = 0;
    for _ in 0..60 {
        let nv = rng.gen_range(2..5usize);
        let ne = rng.gen_range(2..4usize);
        let mut incidence = vec![vec![false; ne]; nv];
        for (v, row) in incidence.iter_mut().enumerate() {
            row[v % ne] = true;
            for cell in row.iter_mut() {
                if rng.gen_bool(0.5) {
                    *cell = true;
                }
            }
        }
        let mut lp = LinearProgram::minimize(vec![1.0; ne]);
        for row in &incidence {
            let coeffs: Vec<f64> = row.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
            lp = lp.constraint(coeffs, ConstraintOp::Ge, 1.0);
        }
        let sol = lp.solve().expect("covering LPs are feasible");
        // Feasibility of the simplex point.
        for row in &incidence {
            let total: f64 = row.iter().zip(&sol.x).map(|(&b, &x)| if b { x } else { 0.0 }).sum();
            assert!(total >= 1.0 - 1e-6);
        }
        // Optimality vs the grid (grid is coarser, so simplex must be ≤ grid
        // + tolerance; with steps = 4 the vertex solutions of covering LPs —
        // multiples of 1/2 — are on the grid).
        let grid = grid_optimum(&incidence, 4);
        assert!(sol.objective <= grid + 1e-6, "simplex {} worse than grid {}", sol.objective, grid);
        solved += 1;
    }
    assert_eq!(solved, 60);
}

#[test]
fn simplex_handles_degenerate_equalities() {
    // min x s.t. a·x ≥ b  ⇒  x = b/a.
    for (a, b) in [(1.0, 1.0), (2.0, 1.0), (1.0, 3.0), (4.0, 6.0)] {
        let lp = LinearProgram::minimize(vec![1.0]).constraint(vec![a], ConstraintOp::Ge, b);
        let s = lp.solve().unwrap();
        assert!((s.objective - b / a).abs() < 1e-9, "min x s.t. {a}x ≥ {b}: got {}", s.objective);
        // Two independent equalities pin both coordinates.
        let lp2 = LinearProgram::minimize(vec![1.0, 1.0])
            .constraint(vec![a, 0.0], ConstraintOp::Eq, b)
            .constraint(vec![0.0, a], ConstraintOp::Eq, b);
        let s2 = lp2.solve().unwrap();
        assert!((s2.objective - 2.0 * b / a).abs() < 1e-6);
    }
}
