//! Property tests for the flat-row construction path (PR 5):
//!
//! 1. [`Factor::from_sorted_distinct`] and the [`FactorBuilder`] push path
//!    are drop-in equivalents of `Factor::new` on adversarial inputs;
//! 2. streaming-built tries ([`FactorBuilder::with_streaming_trie`]) are
//!    structurally identical (`==` on levels) to lazily built ones — for
//!    direct pushes and for the chunked `append` path the parallel engine's
//!    k-way merge uses;
//!
//! each across the counting (`u64`), max-tropical (`f64`), and boolean
//! carriers.

use faq::factor::{Factor, FactorBuilder};
use faq::hypergraph::Var;
use faq::semiring::SemiringElem;
use proptest::prelude::*;

const DOM: u32 = 4;

/// Decode a support bitmap over `DOM³` into sorted, distinct arity-3 rows.
fn rows_of(cells: &[u32]) -> Vec<(Vec<u32>, u32)> {
    cells
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0)
        .map(|(i, &x)| {
            let i = i as u32;
            (vec![i / (DOM * DOM), (i / DOM) % DOM, i % DOM], x)
        })
        .collect()
}

fn schema3() -> Vec<Var> {
    vec![Var(0), Var(1), Var(2)]
}

/// Assert the three construction paths agree for one carrier type, and that
/// the streaming trie (plain pushes and chunked appends alike) equals the
/// lazily built one.
fn check_paths<E: SemiringElem>(rows: &[(Vec<u32>, E)]) {
    // Reference: the sorting constructor, fed the rows in reverse (it may
    // not rely on input order).
    let mut reversed: Vec<(Vec<u32>, E)> = rows.to_vec();
    reversed.reverse();
    let reference = Factor::new(schema3(), reversed).unwrap();

    // Path 1: from_sorted_distinct over pre-flattened storage.
    let flat: Vec<u32> = rows.iter().flat_map(|(t, _)| t.iter().copied()).collect();
    let vals: Vec<E> = rows.iter().map(|(_, v)| v.clone()).collect();
    let direct = Factor::from_sorted_distinct(schema3(), flat, vals).unwrap();
    assert_eq!(direct, reference);

    // Path 2: builder pushes, with the streaming trie on.
    let mut builder = FactorBuilder::new(schema3()).unwrap().with_streaming_trie();
    for (t, v) in rows {
        builder.push(t, v.clone());
    }
    let streamed = builder.finish();
    assert_eq!(streamed, reference);
    assert_eq!(
        streamed.trie_if_built().expect("streaming build leaves a trie"),
        reference.trie(),
        "streamed trie must be structurally identical to the lazy build"
    );

    // Path 3: chunked appends (the parallel k-way merge shape): split the
    // stream at first-column boundaries, build a chunk builder per piece,
    // append them into a streaming-trie builder.
    let mut merged = FactorBuilder::new(schema3()).unwrap().with_streaming_trie();
    let mut i = 0;
    while i < rows.len() {
        let cut = rows[i].0[0];
        let mut chunk = FactorBuilder::new(schema3()).unwrap();
        while i < rows.len() && rows[i].0[0] == cut {
            chunk.push(&rows[i].0, rows[i].1.clone());
            i += 1;
        }
        merged.append(chunk);
    }
    let merged = merged.finish();
    assert_eq!(merged, reference);
    assert_eq!(merged.trie_if_built().expect("append keeps streaming"), reference.trie());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counting carrier (`u64`).
    #[test]
    fn counting_flat_paths_agree(
        cells in proptest::collection::vec(0u32..3, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, u64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as u64)).collect();
        check_paths(&rows);
    }

    /// Max-tropical carrier (`f64` in log space — bit-level equality).
    #[test]
    fn max_tropical_flat_paths_agree(
        cells in proptest::collection::vec(0u32..4, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, f64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as f64 * 0.25)).collect();
        check_paths(&rows);
    }

    /// Boolean carrier.
    #[test]
    fn boolean_flat_paths_agree(
        cells in proptest::collection::vec(0u32..2, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, bool)> =
            rows_of(&cells).into_iter().map(|(t, _)| (t, true)).collect();
        check_paths(&rows);
    }

    /// Reorder (now index-sorted through the builder) matches a
    /// reference rebuild under the permuted schema.
    #[test]
    fn reorder_matches_reference(
        cells in proptest::collection::vec(0u32..3, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, u64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as u64)).collect();
        let f = Factor::new(schema3(), rows.clone()).unwrap();
        for perm in [[2u32, 0, 1], [1, 2, 0], [2, 1, 0], [0, 1, 2]] {
            let new_schema: Vec<Var> = perm.iter().map(|&i| Var(i)).collect();
            let got = f.reorder(&new_schema);
            let expect = Factor::new(
                new_schema.clone(),
                rows.iter()
                    .map(|(t, v)| (perm.iter().map(|&i| t[i as usize]).collect(), *v))
                    .collect(),
            )
            .unwrap();
            assert_eq!(got, expect, "perm {perm:?}");
        }
    }
}

#[test]
fn from_sorted_distinct_rejects_malformed_storage() {
    // rows/vals length mismatch surfaces as an arity error, not a panic.
    assert!(Factor::<u64>::from_sorted_distinct(schema3(), vec![0, 0], vec![1]).is_err());
    // Nullary schemas hold at most one value.
    assert!(Factor::<u64>::from_sorted_distinct(vec![], vec![], vec![1, 2]).is_err());
    assert_eq!(
        Factor::<u64>::from_sorted_distinct(vec![], vec![], vec![7]).unwrap().get(&[]),
        Some(&7)
    );
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "strictly ascending")]
fn builder_rejects_unsorted_rows_in_debug() {
    let mut b = FactorBuilder::<u64>::new(schema3()).unwrap();
    b.push(&[1, 0, 0], 1);
    b.push(&[0, 0, 0], 1);
}
