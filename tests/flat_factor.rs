//! Property tests for the flat-row construction path (PR 5):
//!
//! 1. [`Factor::from_sorted_distinct`] and the [`FactorBuilder`] push path
//!    are drop-in equivalents of `Factor::new` on adversarial inputs;
//! 2. streaming-built tries ([`FactorBuilder::with_streaming_trie`]) are
//!    structurally identical (`==` on levels) to lazily built ones — for
//!    direct pushes and for the chunked `append` path the parallel engine's
//!    k-way merge uses;
//!
//! 3. file-chunked (spilled) listings are accessor-level drop-ins for the
//!    in-memory backing — equality, column/value reads across chunk
//!    boundaries, column maxima, point lookups, projections — at chunk
//!    sizes 1, C−1, C, C+1, with the spill directory removed when the last
//!    handle drops;
//!
//! each across the counting (`u64`), max-tropical (`f64`), and boolean
//! carriers.

use faq::factor::{Factor, FactorBuilder, SpillConfig};
use faq::hypergraph::Var;
use faq::semiring::SemiringElem;
use proptest::prelude::*;

const DOM: u32 = 4;

/// Decode a support bitmap over `DOM³` into sorted, distinct arity-3 rows.
fn rows_of(cells: &[u32]) -> Vec<(Vec<u32>, u32)> {
    cells
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0)
        .map(|(i, &x)| {
            let i = i as u32;
            (vec![i / (DOM * DOM), (i / DOM) % DOM, i % DOM], x)
        })
        .collect()
}

fn schema3() -> Vec<Var> {
    vec![Var(0), Var(1), Var(2)]
}

/// Assert the three construction paths agree for one carrier type, and that
/// the streaming trie (plain pushes and chunked appends alike) equals the
/// lazily built one.
fn check_paths<E: SemiringElem>(rows: &[(Vec<u32>, E)]) {
    // Reference: the sorting constructor, fed the rows in reverse (it may
    // not rely on input order).
    let mut reversed: Vec<(Vec<u32>, E)> = rows.to_vec();
    reversed.reverse();
    let reference = Factor::new(schema3(), reversed).unwrap();

    // Path 1: from_sorted_distinct over pre-flattened storage.
    let flat: Vec<u32> = rows.iter().flat_map(|(t, _)| t.iter().copied()).collect();
    let vals: Vec<E> = rows.iter().map(|(_, v)| v.clone()).collect();
    let direct = Factor::from_sorted_distinct(schema3(), flat, vals).unwrap();
    assert_eq!(direct, reference);

    // Path 2: builder pushes, with the streaming trie on.
    let mut builder = FactorBuilder::new(schema3()).unwrap().with_streaming_trie();
    for (t, v) in rows {
        builder.push(t, v.clone());
    }
    let streamed = builder.finish();
    assert_eq!(streamed, reference);
    assert_eq!(
        streamed.trie_if_built().expect("streaming build leaves a trie"),
        reference.trie(),
        "streamed trie must be structurally identical to the lazy build"
    );

    // Path 3: chunked appends (the parallel k-way merge shape): split the
    // stream at first-column boundaries, build a chunk builder per piece,
    // append them into a streaming-trie builder.
    let mut merged = FactorBuilder::new(schema3()).unwrap().with_streaming_trie();
    let mut i = 0;
    while i < rows.len() {
        let cut = rows[i].0[0];
        let mut chunk = FactorBuilder::new(schema3()).unwrap();
        while i < rows.len() && rows[i].0[0] == cut {
            chunk.push(&rows[i].0, rows[i].1.clone());
            i += 1;
        }
        merged.append(chunk);
    }
    let merged = merged.finish();
    assert_eq!(merged, reference);
    assert_eq!(merged.trie_if_built().expect("append keeps streaming"), reference.trie());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counting carrier (`u64`).
    #[test]
    fn counting_flat_paths_agree(
        cells in proptest::collection::vec(0u32..3, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, u64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as u64)).collect();
        check_paths(&rows);
    }

    /// Max-tropical carrier (`f64` in log space — bit-level equality).
    #[test]
    fn max_tropical_flat_paths_agree(
        cells in proptest::collection::vec(0u32..4, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, f64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as f64 * 0.25)).collect();
        check_paths(&rows);
    }

    /// Boolean carrier.
    #[test]
    fn boolean_flat_paths_agree(
        cells in proptest::collection::vec(0u32..2, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, bool)> =
            rows_of(&cells).into_iter().map(|(t, _)| (t, true)).collect();
        check_paths(&rows);
    }

    /// Reorder (now index-sorted through the builder) matches a
    /// reference rebuild under the permuted schema.
    #[test]
    fn reorder_matches_reference(
        cells in proptest::collection::vec(0u32..3, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, u64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as u64)).collect();
        let f = Factor::new(schema3(), rows.clone()).unwrap();
        for perm in [[2u32, 0, 1], [1, 2, 0], [2, 1, 0], [0, 1, 2]] {
            let new_schema: Vec<Var> = perm.iter().map(|&i| Var(i)).collect();
            let got = f.reorder(&new_schema);
            let expect = Factor::new(
                new_schema.clone(),
                rows.iter()
                    .map(|(t, v)| (perm.iter().map(|&i| t[i as usize]).collect(), *v))
                    .collect(),
            )
            .unwrap();
            assert_eq!(got, expect, "perm {perm:?}");
        }
    }
}

#[test]
fn from_sorted_distinct_rejects_malformed_storage() {
    // rows/vals length mismatch surfaces as an arity error, not a panic.
    assert!(Factor::<u64>::from_sorted_distinct(schema3(), vec![0, 0], vec![1]).is_err());
    // Nullary schemas hold at most one value.
    assert!(Factor::<u64>::from_sorted_distinct(vec![], vec![], vec![1, 2]).is_err());
    assert_eq!(
        Factor::<u64>::from_sorted_distinct(vec![], vec![], vec![7]).unwrap().get(&[]),
        Some(&7)
    );
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "strictly ascending")]
fn builder_rejects_unsorted_rows_in_debug() {
    let mut b = FactorBuilder::<u64>::new(schema3()).unwrap();
    b.push(&[1, 0, 0], 1);
    b.push(&[0, 0, 0], 1);
}

/// Spill one factor at several chunk geometries and check every
/// backing-agnostic accessor against the in-memory original: equality,
/// column/value reads (ascending then descending, so the 2-chunk LRU
/// window must evict and re-fault), column maxima, point lookups, and the
/// indicator-projection family — including reordering (non-prefix) keeps,
/// which group through a sorted map on a spilled listing.
fn check_spilled_accessors<E>(mem: &Factor<E>, one: E)
where
    E: SemiringElem + faq::factor::FixedBytes + PartialEq,
{
    // Chunk geometries around the natural boundary C = 4: a single row per
    // chunk, C − 1, C, and C + 1, so rows straddle chunk boundaries in
    // every alignment the reader can see.
    for chunk_rows in [1usize, 3, 4, 5] {
        let config = SpillConfig {
            chunk_rows,
            level_chunk_entries: chunk_rows,
            window_chunks: 2,
            ..SpillConfig::default()
        };
        let spilled = mem.to_spilled(config);
        assert!(spilled.is_spilled());
        assert_eq!(&spilled, mem, "chunk_rows {chunk_rows}");
        assert_eq!(spilled.len(), mem.len());
        let stats = spilled.spill_stats().expect("spilled listing has stats");
        assert_eq!(stats.chunks, mem.len().div_ceil(chunk_rows));
        for d in 0..mem.arity() {
            assert_eq!(spilled.max_in_column(d), mem.max_in_column(d), "col {d} max");
        }
        for i in (0..mem.len()).chain((0..mem.len()).rev()) {
            for d in 0..mem.arity() {
                assert_eq!(spilled.col(i, d), mem.col(i, d), "row {i} col {d}");
            }
            assert!(spilled.value_at(i).as_ref() == mem.value(i), "value {i}");
        }
        // Point lookups pin chunks on demand through the spilled trie.
        let mut probe = vec![0u32; mem.arity()];
        for i in 0..mem.len() {
            for (d, slot) in probe.iter_mut().enumerate() {
                *slot = mem.col(i, d);
            }
            assert!(spilled.get_cloned(&probe).as_ref() == Some(mem.value(i)));
        }
        assert!(spilled.get_cloned(&vec![DOM; mem.arity()]).is_none());
        // Prefix and reordering projections agree with the heap path.
        for keep in [vec![Var(0)], vec![Var(0), Var(1)], vec![Var(1), Var(2)], vec![Var(2)]] {
            assert_eq!(
                spilled.indicator_projection(&keep, one.clone()),
                mem.indicator_projection(&keep, one.clone()),
                "indicator keep {keep:?} chunk_rows {chunk_rows}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// File-chunked accessors ≡ the in-memory listing, counting carrier.
    #[test]
    fn counting_spilled_accessors_agree(
        cells in proptest::collection::vec(0u32..3, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, u64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as u64)).collect();
        if !rows.is_empty() {
            let mem = Factor::new(schema3(), rows).unwrap();
            check_spilled_accessors(&mem, 1u64);
        }
    }

    /// File-chunked accessors ≡ the in-memory listing, max-tropical carrier
    /// (`f64` — the fixed-width codec round-trips through `to_bits`).
    #[test]
    fn max_tropical_spilled_accessors_agree(
        cells in proptest::collection::vec(0u32..4, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, f64)> =
            rows_of(&cells).into_iter().map(|(t, x)| (t, x as f64 * 0.25)).collect();
        if !rows.is_empty() {
            let mem = Factor::new(schema3(), rows).unwrap();
            check_spilled_accessors(&mem, 0.0f64);
        }
    }

    /// File-chunked accessors ≡ the in-memory listing, boolean carrier.
    #[test]
    fn boolean_spilled_accessors_agree(
        cells in proptest::collection::vec(0u32..2, (DOM * DOM * DOM) as usize),
    ) {
        let rows: Vec<(Vec<u32>, bool)> =
            rows_of(&cells).into_iter().map(|(t, _)| (t, true)).collect();
        if !rows.is_empty() {
            let mem = Factor::new(schema3(), rows).unwrap();
            check_spilled_accessors(&mem, true);
        }
    }
}

/// Spill chunks live in a per-listing directory that is removed when the
/// last handle (factor clones included) drops — no on-disk residue.
#[test]
fn spill_directory_removed_when_last_handle_drops() {
    let base = std::env::temp_dir().join(format!("faq-flat-factor-cleanup-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let count = |dir: &std::path::Path| std::fs::read_dir(dir).unwrap().count();
    assert_eq!(count(&base), 0, "fresh base directory must be empty");

    let rows: Vec<(Vec<u32>, u64)> =
        (0..64u32).map(|i| (vec![i / 16, (i / 4) % 4, i % 4], u64::from(i) + 1)).collect();
    let mem = Factor::new(schema3(), rows).unwrap();
    let spilled = mem.to_spilled(SpillConfig {
        dir: Some(base.clone()),
        chunk_rows: 7,
        level_chunk_entries: 7,
        window_chunks: 2,
    });
    assert_eq!(count(&base), 1, "spilling creates exactly one directory");

    // A clone shares the directory; dropping the original must not delete it.
    let clone = spilled.clone();
    drop(spilled);
    assert_eq!(count(&base), 1, "directory outlives the original while a clone reads");
    assert_eq!(clone.col(63, 2), 3);

    drop(clone);
    assert_eq!(count(&base), 0, "last drop removes the spill directory");
    std::fs::remove_dir(&base).unwrap();
}
