//! Extension features: provenance polynomials through the engine (factorized
//! databases connection, §2.2/§8.4) and non-semiring aggregates via carrier
//! lifting (Appendix B: `average` as the (sum, count) pair semiring).

use faq::core::{insideout, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::ext::{avg_of, PairSemiring};
use faq::semiring::{F64SumProd, Polynomial, ProvenanceSemiring, SingleSemiringDomain};
use std::collections::BTreeMap;

/// A two-hop join where each input tuple carries its own indeterminate: the
/// output provenance enumerates the derivations, and evaluating the
/// polynomials under the counting homomorphism reproduces the join
/// multiplicities.
#[test]
fn provenance_polynomials_through_insideout() {
    let prov = ProvenanceSemiring;
    // R(x0,x1) = {(0,0)→x0, (0,1)→x1}, S(x1,x2) = {(0,5)→x2, (1,5)→x3}.
    let r = Factor::new(
        vec![Var(0), Var(1)],
        vec![(vec![0, 0], Polynomial::var(0)), (vec![0, 1], Polynomial::var(1))],
    )
    .unwrap();
    let s = Factor::new(
        vec![Var(1), Var(2)],
        vec![(vec![0, 5], Polynomial::var(2)), (vec![1, 5], Polynomial::var(3))],
    )
    .unwrap();
    // ϕ(x0) = Σ_{x1,x2} R·S  over ℕ[X].
    let q = FaqQuery::new(
        SingleSemiringDomain::new(prov),
        Domains::new(vec![1, 2, 6]),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(SingleSemiringDomain::<ProvenanceSemiring>::OP)),
            (Var(2), VarAgg::Semiring(SingleSemiringDomain::<ProvenanceSemiring>::OP)),
        ],
        vec![r, s],
    )
    .unwrap();
    let out = insideout(&q).unwrap().factor;
    assert_eq!(out.len(), 1);
    let p = out.get(&[0]).unwrap();
    // Derivations: x0·x2 (via x1=0) + x1·x3 (via x1=1).
    assert_eq!(p.num_terms(), 2);
    assert_eq!(p.degree(), 2);
    // Counting homomorphism: every tuple present once ⇒ multiplicity 2.
    let all_ones: BTreeMap<u32, u64> = (0..4).map(|i| (i, 1u64)).collect();
    assert_eq!(p.eval(&all_ones, 0), 2);
    // Deleting tuple x1 (set it to 0) kills one derivation.
    let mut minus: BTreeMap<u32, u64> = all_ones.clone();
    minus.insert(1, 0);
    assert_eq!(p.eval(&minus, 0), 1);
    println!("provenance of output (0): {p}");
}

/// Appendix B: `average` is not a semiring aggregate on ℝ, but it is the
/// projection of the `(sum, count)` pair semiring. Compute a grouped average
/// through the engine.
#[test]
fn average_aggregate_via_pair_semiring() {
    let pair = PairSemiring::new(F64SumProd, F64SumProd);
    // scores(student, score-bucket) with values (score, 1) pairs.
    let scores = Factor::new(
        vec![Var(0), Var(1)],
        vec![
            (vec![0, 0], (80.0, 1.0)),
            (vec![0, 1], (90.0, 1.0)),
            (vec![0, 2], (100.0, 1.0)),
            (vec![1, 0], (60.0, 1.0)),
            (vec![1, 1], (70.0, 1.0)),
        ],
    )
    .unwrap();
    // ϕ(student) = Σ_{bucket} scores — accumulating (sum, count).
    let q = FaqQuery::new(
        SingleSemiringDomain::new(pair),
        Domains::new(vec![2, 3]),
        vec![Var(0)],
        vec![(
            Var(1),
            VarAgg::Semiring(SingleSemiringDomain::<PairSemiring<F64SumProd, F64SumProd>>::OP),
        )],
        vec![scores],
    )
    .unwrap();
    let out = insideout(&q).unwrap().factor;
    assert_eq!(avg_of(out.get(&[0]).unwrap()), Some(90.0));
    assert_eq!(avg_of(out.get(&[1]).unwrap()), Some(65.0));
}

/// The pair-semiring laws survive the engine: sums and counts accumulated
/// through InsideOut match independently computed totals.
#[test]
fn pair_semiring_totals_match_components() {
    let pair = PairSemiring::new(F64SumProd, F64SumProd);
    let data: Vec<(Vec<u32>, (f64, f64))> =
        (0..12u32).map(|i| (vec![i % 3, i / 3], ((i as f64) * 1.5, 1.0))).collect();
    let f = Factor::new(vec![Var(0), Var(1)], data.clone()).unwrap();
    let q = FaqQuery::new(
        SingleSemiringDomain::new(pair),
        Domains::new(vec![3, 4]),
        vec![],
        vec![
            (
                Var(0),
                VarAgg::Semiring(SingleSemiringDomain::<PairSemiring<F64SumProd, F64SumProd>>::OP),
            ),
            (
                Var(1),
                VarAgg::Semiring(SingleSemiringDomain::<PairSemiring<F64SumProd, F64SumProd>>::OP),
            ),
        ],
        vec![f],
    )
    .unwrap();
    let out = insideout(&q).unwrap();
    let (sum, count) = out.scalar().copied().unwrap();
    let expect_sum: f64 = data.iter().map(|(_, (s, _))| s).sum();
    assert!((sum - expect_sum).abs() < 1e-9);
    assert_eq!(count, 12.0);
}

/// The set semiring through the engine: union/intersection provenance of a
/// Boolean-style query.
#[test]
fn set_semiring_union_intersection() {
    use faq::semiring::SetSemiring;
    let s = SetSemiring::new(8);
    let set = |ids: &[u32]| ids.iter().copied().collect::<std::collections::BTreeSet<u32>>();
    let r = Factor::new(vec![Var(0)], vec![(vec![0], set(&[0, 1, 2])), (vec![1], set(&[3, 4]))])
        .unwrap();
    let t = Factor::new(vec![Var(0)], vec![(vec![0], set(&[1, 2, 5])), (vec![1], set(&[4, 6]))])
        .unwrap();
    // ϕ = ⋃_{x0} (R(x0) ∩ T(x0)).
    let q = FaqQuery::new(
        SingleSemiringDomain::new(s),
        Domains::uniform(1, 2),
        vec![],
        vec![(Var(0), VarAgg::Semiring(SingleSemiringDomain::<SetSemiring>::OP))],
        vec![r, t],
    )
    .unwrap();
    let out = insideout(&q).unwrap();
    assert_eq!(out.scalar().cloned(), Some(set(&[1, 2, 4])));
}
