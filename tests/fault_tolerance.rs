//! Deadline-bounded queries over the out-of-core workload: an expiring
//! budget must surface as a typed [`ServeError::DeadlineExceeded`] promptly
//! (within 2× the requested budget) and leave the serving gauges — pinned
//! chunk bytes, admission permits — exactly where they were before the
//! submission.

use faq::factor::fault::Deadline;
use faq::factor::SpillConfig;
use faq::serve::{CacheMode, FaqServer, QuerySpec, ServeConfig, ServeError};
use faq::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::{Duration, Instant};

const DOM: u32 = 64;

fn edge(seed: u64, rows: usize, a: u32, b: u32) -> Factor<u64> {
    let mut r = StdRng::seed_from_u64(seed);
    let mut tuples = std::collections::BTreeMap::new();
    for _ in 0..rows {
        tuples.insert(vec![r.gen_range(0..DOM), r.gen_range(0..DOM)], r.gen_range(1..4u64));
    }
    Factor::new(vec![Var(a), Var(b)], tuples.into_iter().collect()).unwrap()
}

fn spec() -> QuerySpec {
    QuerySpec::new(
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::SUM)),
        ],
        vec![0, 1, 2],
    )
}

#[test]
fn deadline_bounded_out_of_core_query_cleans_up() {
    let spill =
        SpillConfig { dir: None, chunk_rows: 64, level_chunk_entries: 64, window_chunks: 2 };
    let catalog: Vec<Factor<u64>> = [edge(3, 3000, 0, 1), edge(4, 3000, 1, 2), edge(5, 3000, 0, 2)]
        .iter()
        .map(|f| f.to_spilled(spill.clone()))
        .collect();
    let server = FaqServer::with_config(
        ServeConfig::default().workers(1),
        CountDomain,
        Domains::uniform(3, DOM),
        catalog,
    );
    let q = server.register(spec()).unwrap();
    let tenant = server.tenant("t", 4);

    // Warmup: one full unbounded evaluation fills every chunk window to its
    // (deterministic) end-of-evaluation state, giving the reference values
    // for the pinned-bytes gauge and its peak.
    faq::factor::reset_peak_pinned_bytes();
    let warm_start = Instant::now();
    let warm = server.submit_with(&tenant, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
    let full_eval = warm_start.elapsed();
    let pinned_before = faq::factor::pinned_bytes();
    let peak_full = faq::factor::peak_pinned_bytes();
    assert_eq!(tenant.in_flight(), 0);

    // The budget must genuinely truncate the evaluation: take a fraction of
    // the measured full evaluation, floored high enough that scheduling
    // noise cannot dominate the 2× bound.
    let budget = (full_eval / 8).max(Duration::from_millis(25));
    if budget * 2 >= full_eval {
        // Machine too fast for this workload to outlast any meaningful
        // budget — the deadline path is still covered by the serve unit
        // tests and the chaos suite.
        eprintln!("full evaluation took {full_eval:?}; skipping timing assertions");
        return;
    }
    let policy = ExecPolicy::sequential().deadline(Deadline::after(budget));
    faq::factor::reset_peak_pinned_bytes();
    let start = Instant::now();
    let err = server
        .submit_with(&tenant, q, Some(&policy), CacheMode::Bypass)
        .unwrap()
        .wait()
        .unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(err, ServeError::DeadlineExceeded);
    assert!(
        elapsed <= budget * 2,
        "deadline must abort within 2x the budget: budget {budget:?}, took {elapsed:?}"
    );

    // Partial-work cleanup: permits released, and the aborted run (a prefix
    // of the deterministic full evaluation) never pinned more than the full
    // evaluation's high-water mark — the abort dropped its pins instead of
    // leaking them past the LRU window policy.
    assert_eq!(tenant.in_flight(), 0, "aborted submission released its permits");
    assert!(
        faq::factor::peak_pinned_bytes() <= peak_full,
        "aborted evaluation must stay within the full evaluation's pin high-water mark: \
         peak {} vs full-eval peak {}",
        faq::factor::peak_pinned_bytes(),
        peak_full
    );

    // The same query, unbounded, still completes, matches the warmup, and —
    // because both the evaluation and the LRU replacement are deterministic —
    // returns the pinned-chunk gauge to exactly its pre-query value. The
    // abort left no stray pins behind.
    let again = server.submit_with(&tenant, q, None, CacheMode::Bypass).unwrap().wait().unwrap();
    assert_eq!(*again.factor, *warm.factor);
    assert_eq!(
        faq::factor::pinned_bytes(),
        pinned_before,
        "gauge must return to its pre-query value once the windows requiesce"
    );
    assert!(server.stats().deadline_exceeded >= 1);
}
