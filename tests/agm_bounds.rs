//! Theorem 5.5 / Theorem 5.1 shape checks: InsideOut's intermediates stay
//! within the AGM bound of the eliminated variable's neighborhood, and the
//! output phase is output-sensitive (Yannakakis behaviour on acyclic joins).

use faq::apps::joins;
use faq::core::{insideout, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::widths::agm_bound;
use faq::hypergraph::{Var, VarSet};
use faq::semiring::CountDomain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// On the triangle query, the first (and only) intermediate is the join over
/// all three variables: its size must respect AGM = (|R||S||T|)^{1/2}.
#[test]
fn triangle_intermediates_within_agm() {
    let mut rng = StdRng::seed_from_u64(2);
    for nodes in [16u32, 32, 64] {
        let edges = joins::random_graph(nodes, (nodes * 6) as usize, &mut rng);
        let q = joins::triangle_query(&edges, nodes);
        let out = q.evaluate().unwrap();
        let h = q.to_faq().unwrap().hypergraph();
        let sizes: Vec<u64> = q.relations.iter().map(|r| r.tuples.len() as u64).collect();
        let all: VarSet = [Var(0), Var(1), Var(2)].into_iter().collect();
        let bound = agm_bound(&h, &all, &sizes).unwrap();
        assert!(
            (out.factor.len() as f64) <= bound + 1.0,
            "output {} above AGM {}",
            out.factor.len(),
            bound
        );
        assert!(
            (out.stats.max_intermediate as f64) <= bound + 1.0,
            "intermediate {} above AGM {}",
            out.stats.max_intermediate,
            bound
        );
    }
}

/// For random FAQ-SS chain queries the intermediate of each elimination step
/// is a projection of a join covered by two adjacent factors: its size is at
/// most the AGM bound of U_k computed from the *original* factor sizes.
#[test]
fn chain_intermediates_within_stepwise_agm() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..10 {
        let dom = 8u32;
        let len = 5usize;
        let mut factors: Vec<Factor<u64>> = Vec::new();
        for i in 0..len - 1 {
            let mut tuples = std::collections::BTreeSet::new();
            for _ in 0..40 {
                tuples.insert(vec![rng.gen_range(0..dom), rng.gen_range(0..dom)]);
            }
            factors.push(
                Factor::new(
                    vec![Var(i as u32), Var(i as u32 + 1)],
                    tuples.into_iter().map(|t| (t, 1u64)).collect(),
                )
                .unwrap(),
            );
        }
        let sizes: Vec<u64> = factors.iter().map(|f| f.len() as u64).collect();
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(len, dom),
            vec![],
            (0..len as u32).map(|i| (Var(i), VarAgg::Semiring(CountDomain::SUM))).collect(),
            factors,
        )
        .unwrap();
        let h = q.hypergraph();
        let out = insideout(&q).unwrap();
        // Eliminating from the back, U_k = {x_{k-1}, x_k} ∪ (fold residue):
        // for a chain the U-sets are pairs/triples always covered by original
        // edges; check each recorded step against AGM of its U.
        for step in &out.stats.steps {
            if step.u_size == 0 {
                continue;
            }
            // Reconstruct a superset of U_k: the step's variable plus all
            // chain neighbors within u_size hops — conservatively use the
            // whole vertex set bound instead when small.
            let var = step.var;
            let mut u: VarSet = VarSet::new();
            u.insert(var);
            if var.0 > 0 {
                u.insert(Var(var.0 - 1));
            }
            if (var.index() + 1) < len {
                u.insert(Var(var.0 + 1));
            }
            if let Some(bound) = agm_bound(&h, &u, &sizes) {
                assert!(
                    (step.rows_out as f64) <= bound + 1.0,
                    "step {:?}: rows {} above AGM {}",
                    step.var,
                    step.rows_out,
                    bound
                );
            }
        }
    }
}

/// Yannakakis behaviour (the guard phase): on an acyclic join whose output is
/// empty, the final output join performs no work proportional to the inputs.
#[test]
fn output_phase_is_output_sensitive() {
    let n = 200u32;
    let dense: Vec<(u32, u32)> = (0..n).flat_map(|i| [(i, (i + 1) % n)]).collect();
    let mut q = joins::path_query(&dense, n, 4);
    // Shift the last relation's values outside every join partner's range so
    // the 4-path output is empty while each pairwise join is large.
    q.relations[3] = joins::Relation::new(
        q.relations[3].vars.clone(),
        vec![], // empty tail
    );
    let out = q.evaluate().unwrap();
    assert_eq!(out.factor.len(), 0);
    let oj = out.stats.output_join.expect("output join ran");
    assert_eq!(oj.matches, 0);
    // The guard factors are empty, so the backtracking tree dies at the root:
    // node count stays constant-ish rather than scaling with N.
    assert!(oj.nodes <= 4, "output join visited {} nodes", oj.nodes);
}

/// AGM on path queries is the product of endpoints' sizes over a matching:
/// a 2-path's AGM bound is |R|·|S| but the fractional cover uses both edges
/// fully; sanity-check monotonicity in the size vector.
#[test]
fn agm_bound_monotone_in_sizes() {
    let h = faq::hypergraph::Hypergraph::from_edges(&[&[0, 1], &[1, 2]]);
    let b: VarSet = [Var(0), Var(1), Var(2)].into_iter().collect();
    let small = agm_bound(&h, &b, &[10, 10]).unwrap();
    let big = agm_bound(&h, &b, &[100, 100]).unwrap();
    assert!(small <= big);
    assert!((small - 100.0).abs() < 1e-6, "{small}");
}
