//! The central correctness property: InsideOut ≡ the naive evaluator on
//! randomized FAQ instances, across semirings, aggregate mixes, free-variable
//! configurations and equivalent orderings.

use faq::core::evo::is_equivalent_ordering;
use faq::core::width::faqw_optimize;
use faq::core::{insideout, insideout_with_order, naive_eval, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::{BoolDomain, CountDomain, RealDomain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random sparse factor over `vars` with values in `1..=4`.
fn random_count_factor(rng: &mut StdRng, vars: &[Var], dom: u32, density: f64) -> Factor<u64> {
    let mut tuples = Vec::new();
    let mut cur = vec![0u32; vars.len()];
    loop {
        if rng.gen_bool(density) {
            tuples.push((cur.clone(), rng.gen_range(1..=4u64)));
        }
        let mut i = vars.len();
        let done = loop {
            if i == 0 {
                break true;
            }
            i -= 1;
            cur[i] += 1;
            if cur[i] < dom {
                break false;
            }
            cur[i] = 0;
        };
        if done {
            break;
        }
    }
    Factor::new(vars.to_vec(), tuples).unwrap()
}

fn random_bool_factor(rng: &mut StdRng, vars: &[Var], dom: u32, density: f64) -> Factor<bool> {
    let f = random_count_factor(rng, vars, dom, density);
    Factor::new(vars.to_vec(), f.iter().map(|(row, _)| (row.to_vec(), true)).collect()).unwrap()
}

#[test]
fn random_count_queries_all_aggregate_mixes() {
    let mut rng = StdRng::seed_from_u64(20160626);
    for round in 0..60 {
        let n_vars = rng.gen_range(3..6usize);
        let dom = rng.gen_range(2..4u32);
        let domains = Domains::uniform(n_vars, dom);
        let n_free = rng.gen_range(0..=1usize);
        let free: Vec<Var> = (0..n_free as u32).map(Var).collect();
        let aggs = [
            VarAgg::Semiring(CountDomain::SUM),
            VarAgg::Semiring(CountDomain::MAX),
            VarAgg::Product,
        ];
        let bound: Vec<(Var, VarAgg)> =
            (n_free as u32..n_vars as u32).map(|i| (Var(i), aggs[rng.gen_range(0..3)])).collect();
        // Random chain + one extra random binary factor, guaranteeing
        // coverage of every variable.
        let mut factors = Vec::new();
        for i in 0..n_vars - 1 {
            factors.push(random_count_factor(
                &mut rng,
                &[Var(i as u32), Var(i as u32 + 1)],
                dom,
                0.7,
            ));
        }
        let a = rng.gen_range(0..n_vars as u32);
        let b = (a + 1 + rng.gen_range(0..n_vars as u32 - 1)) % n_vars as u32;
        if a != b {
            factors.push(random_count_factor(&mut rng, &[Var(a.min(b)), Var(a.max(b))], dom, 0.5));
        }
        let q = FaqQuery::new(CountDomain, domains, free, bound, factors).unwrap();
        let expect = naive_eval(&q);
        let got = insideout(&q).unwrap();
        assert_eq!(got.factor, expect, "round {round}: {q:?}");
    }
}

#[test]
fn random_real_queries_with_free_variables() {
    let mut rng = StdRng::seed_from_u64(777);
    for _ in 0..40 {
        let dom = 3u32;
        let domains = Domains::uniform(4, dom);
        let mk = |rng: &mut StdRng, a: u32, b: u32| {
            let f = random_count_factor(rng, &[Var(a), Var(b)], dom, 0.6);
            Factor::new(
                vec![Var(a), Var(b)],
                f.iter().map(|(row, v)| (row.to_vec(), *v as f64 * 0.25)).collect(),
            )
            .unwrap()
        };
        let factors = vec![mk(&mut rng, 0, 1), mk(&mut rng, 1, 2), mk(&mut rng, 2, 3)];
        let q = FaqQuery::new(
            RealDomain,
            domains,
            vec![Var(0), Var(1)],
            vec![
                (Var(2), VarAgg::Semiring(RealDomain::SUM)),
                (Var(3), VarAgg::Semiring(RealDomain::MAX)),
            ],
            factors,
        )
        .unwrap();
        let expect = naive_eval(&q);
        let got = insideout(&q).unwrap();
        assert_eq!(got.factor.len(), expect.len());
        for (row, val) in expect.iter() {
            let g = got.factor.get(row).unwrap_or_else(|| panic!("missing {row:?}"));
            assert!((g - val).abs() < 1e-9 * (1.0 + val.abs()), "{row:?}: {g} vs {val}");
        }
    }
}

#[test]
fn width_optimized_orderings_stay_correct() {
    let mut rng = StdRng::seed_from_u64(31337);
    for _ in 0..25 {
        let dom = 2u32;
        let domains = Domains::uniform(5, dom);
        let factors = vec![
            random_bool_factor(&mut rng, &[Var(0), Var(1)], dom, 0.7),
            random_bool_factor(&mut rng, &[Var(1), Var(2)], dom, 0.7),
            random_bool_factor(&mut rng, &[Var(2), Var(3)], dom, 0.7),
            random_bool_factor(&mut rng, &[Var(3), Var(4)], dom, 0.7),
            random_bool_factor(&mut rng, &[Var(0), Var(4)], dom, 0.7),
        ];
        let aggs = [VarAgg::Semiring(BoolDomain::OR), VarAgg::Product];
        let bound: Vec<(Var, VarAgg)> =
            (0..5u32).map(|i| (Var(i), aggs[rng.gen_range(0..2)])).collect();
        let q = FaqQuery::new(BoolDomain, domains, vec![], bound, factors).unwrap();
        let expect = naive_eval(&q);
        let shape = q.shape();
        let best = faqw_optimize(&shape, 2_000, 12).unwrap();
        assert!(
            is_equivalent_ordering(&shape, &best.order),
            "optimizer returned non-equivalent ordering {:?}",
            best.order
        );
        let got = insideout_with_order(&q, &best.order).unwrap();
        assert_eq!(got.factor, expect);
    }
}

#[test]
fn every_linex_ordering_evaluates_identically() {
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..15 {
        let dom = 2u32;
        let domains = Domains::uniform(4, dom);
        let factors = vec![
            random_count_factor(&mut rng, &[Var(0), Var(1)], dom, 0.8),
            random_count_factor(&mut rng, &[Var(1), Var(2)], dom, 0.8),
            random_count_factor(&mut rng, &[Var(2), Var(3)], dom, 0.8),
        ];
        let q = FaqQuery::new(
            CountDomain,
            domains,
            vec![],
            vec![
                (Var(0), VarAgg::Semiring(CountDomain::SUM)),
                (Var(1), VarAgg::Semiring(CountDomain::MAX)),
                (Var(2), VarAgg::Semiring(CountDomain::SUM)),
                (Var(3), VarAgg::Semiring(CountDomain::MAX)),
            ],
            factors,
        )
        .unwrap();
        let expect = naive_eval(&q);
        let (linex, complete) = faq::core::evo::linear_extensions(&q.shape(), 1_000);
        assert!(complete);
        for sigma in linex {
            let got = insideout_with_order(&q, &sigma).unwrap();
            assert_eq!(got.factor, expect, "ordering {sigma:?}");
        }
    }
}

/// The Example 6.19 hypergraph shape (products interleaved with max/Σ,
/// variable copies in the expression tree) with random `{0,1}` factors:
/// InsideOut along every small LinEx ordering must match naive evaluation.
#[test]
fn example_6_19_shape_random_instances() {
    let mut rng = StdRng::seed_from_u64(61919);
    let edges: [&[u32]; 9] =
        [&[1, 3], &[2, 4], &[3, 4], &[1, 5], &[1, 6], &[2, 6], &[2, 5, 7], &[1, 6, 7], &[2, 7, 8]];
    for round in 0..10 {
        let dom = 2u32;
        let mut domains_sizes = vec![1u32]; // Var(0) unused
        domains_sizes.extend(std::iter::repeat_n(dom, 8));
        let factors: Vec<Factor<u64>> = edges
            .iter()
            .map(|schema| {
                let vars: Vec<Var> = schema.iter().map(|&i| Var(i)).collect();
                let mut tuples = Vec::new();
                let mut cur = vec![0u32; vars.len()];
                loop {
                    if rng.gen_bool(0.8) {
                        tuples.push((cur.clone(), 1u64));
                    }
                    let mut i = vars.len();
                    let done = loop {
                        if i == 0 {
                            break true;
                        }
                        i -= 1;
                        cur[i] += 1;
                        if cur[i] < dom {
                            break false;
                        }
                        cur[i] = 0;
                    };
                    if done {
                        break;
                    }
                }
                Factor::new(vars, tuples).unwrap()
            })
            .collect();
        let q = FaqQuery::new(
            CountDomain,
            Domains::new(domains_sizes),
            vec![],
            vec![
                (Var(1), VarAgg::Semiring(CountDomain::MAX)),
                (Var(2), VarAgg::Semiring(CountDomain::MAX)),
                (Var(3), VarAgg::Semiring(CountDomain::SUM)),
                (Var(4), VarAgg::Semiring(CountDomain::SUM)),
                (Var(5), VarAgg::Product),
                (Var(6), VarAgg::Semiring(CountDomain::MAX)),
                (Var(7), VarAgg::Product),
                (Var(8), VarAgg::Semiring(CountDomain::MAX)),
            ],
            factors,
        )
        .unwrap();
        let expect = naive_eval(&q);
        // Original order.
        assert_eq!(insideout(&q).unwrap().factor, expect, "round {round}: input order");
        // A handful of LinEx orderings under the idempotent promise.
        let shape = q.shape_promising_idempotent_inputs();
        let (linex, _) = faq::core::evo::linear_extensions(&shape, 12);
        for sigma in linex {
            let got = insideout_with_order(&q, &sigma).unwrap();
            assert_eq!(got.factor, expect, "round {round}: ordering {sigma:?}");
        }
    }
}

#[test]
fn boolean_queries_roundtrip() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..30 {
        let dom = 3u32;
        let domains = Domains::uniform(3, dom);
        let factors = vec![
            random_bool_factor(&mut rng, &[Var(0), Var(1)], dom, 0.5),
            random_bool_factor(&mut rng, &[Var(1), Var(2)], dom, 0.5),
        ];
        let q = FaqQuery::new(
            BoolDomain,
            domains,
            vec![Var(0)],
            vec![(Var(1), VarAgg::Semiring(BoolDomain::OR)), (Var(2), VarAgg::Product)],
            factors,
        )
        .unwrap();
        assert_eq!(insideout(&q).unwrap().factor, naive_eval(&q));
    }
}
