//! End-to-end reproductions of the paper's worked examples and named results,
//! exercised through the public API only.

use faq::core::evo::{is_equivalent_ordering, linear_extensions};
use faq::core::width::{faqw_exact, faqw_of_ordering};
use faq::core::{QueryShape, Tag};
use faq::hypergraph::{Var, VarSet};
use faq::semiring::AggId;

const SUM: Tag = Tag::Semiring(AggId(0));
const MAX: Tag = Tag::Semiring(AggId(1));

fn vs(ids: &[u32]) -> VarSet {
    ids.iter().map(|&i| Var(i)).collect()
}

fn vorder(ids: &[u32]) -> Vec<Var> {
    ids.iter().map(|&i| Var(i)).collect()
}

/// Example 6.2 / Figures 2–3: the exact final tree shape.
#[test]
fn figure_2_3_expression_tree() {
    let shape = QueryShape {
        seq: vec![
            (Var(1), SUM),
            (Var(2), SUM),
            (Var(3), MAX),
            (Var(4), SUM),
            (Var(5), SUM),
            (Var(6), MAX),
            (Var(7), MAX),
        ],
        edges: vec![
            vs(&[1, 2]),
            vs(&[1, 3, 5]),
            vs(&[1, 4]),
            vs(&[2, 4, 6]),
            vs(&[2, 7]),
            vs(&[3, 7]),
        ],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    let t = shape.expr_tree();
    let rendered = t.render();
    // Root {} → {1,2,4}Σ → ({3,7}max → {5}Σ) and {6}max.
    assert!(rendered.contains("{X1,X2,X4}"), "{rendered}");
    assert!(rendered.contains("{X3,X7}"), "{rendered}");
    assert!(rendered.contains("{X5}"), "{rendered}");
    assert!(rendered.contains("{X6}"), "{rendered}");
    // The original input ordering is equivalent; a max-before-Σ one is not.
    assert!(is_equivalent_ordering(&shape, &vorder(&[1, 2, 3, 4, 5, 6, 7])));
    assert!(!is_equivalent_ordering(&shape, &vorder(&[3, 1, 2, 4, 5, 6, 7])));
}

/// Example 6.19 / Figures 4–6: dangling node and variable copies.
#[test]
fn figure_4_6_expression_tree() {
    let shape = QueryShape {
        seq: vec![
            (Var(1), MAX),
            (Var(2), MAX),
            (Var(3), SUM),
            (Var(4), SUM),
            (Var(5), Tag::Product),
            (Var(6), MAX),
            (Var(7), Tag::Product),
            (Var(8), MAX),
        ],
        edges: vec![
            vs(&[1, 3]),
            vs(&[2, 4]),
            vs(&[3, 4]),
            vs(&[1, 5]),
            vs(&[1, 6]),
            vs(&[2, 6]),
            vs(&[2, 5, 7]),
            vs(&[1, 6, 7]),
            vs(&[2, 7, 8]),
        ],
        mul_idempotent: true,
        closed_ops: [AggId(1)].into_iter().collect(),
    };
    let t = shape.expr_tree();
    let rendered = t.render();
    assert!(rendered.contains("{X1,X2,X6}"), "{rendered}");
    assert!(rendered.contains("{X5,X7}"), "{rendered}");
    assert!(rendered.contains("{X3,X4}"), "{rendered}");
    assert!(rendered.contains("{X8}"), "{rendered}");
    // X7 occurs three times (copies).
    assert_eq!(t.nodes_of(Var(7)).len(), 3);
}

/// Example 5.6's width gap: faqw(input order) = 2 vs faqw(good order) = 1
/// under the {0,1} idempotent promise.
#[test]
fn example_5_6_width_gap() {
    let shape = QueryShape {
        seq: vec![
            (Var(1), MAX),
            (Var(2), MAX),
            (Var(3), Tag::Product),
            (Var(4), SUM),
            (Var(5), MAX),
            (Var(6), MAX),
        ],
        edges: vec![vs(&[1, 5]), vs(&[2, 5]), vs(&[1, 3, 4]), vs(&[2, 3, 6])],
        mul_idempotent: true,
        closed_ops: [AggId(1)].into_iter().collect(),
    };
    let w_input = faqw_of_ordering(&shape, &vorder(&[1, 2, 3, 4, 5, 6])).unwrap();
    let w_good = faqw_of_ordering(&shape, &vorder(&[5, 1, 2, 3, 4, 6])).unwrap();
    assert!((w_input - 2.0).abs() < 1e-9, "{w_input}");
    assert!((w_good - 1.0).abs() < 1e-9, "{w_good}");
    assert!(is_equivalent_ordering(&shape, &vorder(&[5, 1, 2, 3, 4, 6])));
    // But without the idempotence promise, moving X5 first is NOT valid.
    let strict = QueryShape { mul_idempotent: false, ..shape.clone() };
    assert!(!is_equivalent_ordering(&strict, &vorder(&[5, 1, 2, 3, 4, 6])));
}

/// Example 6.13: the complete EVO set via the membership checker, and
/// LinEx(P) as its width-complete core.
#[test]
fn example_6_13_evo_set() {
    let shape = QueryShape {
        seq: vec![(Var(1), SUM), (Var(2), MAX), (Var(3), SUM)],
        edges: vec![vs(&[1, 2]), vs(&[1, 3])],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    let mut evo = Vec::new();
    let perms = [[1u32, 2, 3], [1, 3, 2], [2, 1, 3], [2, 3, 1], [3, 1, 2], [3, 2, 1]];
    for p in perms {
        if is_equivalent_ordering(&shape, &vorder(&p)) {
            evo.push(p);
        }
    }
    assert_eq!(evo, vec![[1, 2, 3], [1, 3, 2], [3, 1, 2]]);
    let (linex, _) = linear_extensions(&shape, 100);
    // Every LinEx member has the optimal width 1 (Prop 6.11 / Cor 6.14).
    for sigma in &linex {
        assert!((faqw_of_ordering(&shape, sigma).unwrap() - 1.0).abs() < 1e-9);
    }
}

/// Proposition 5.12: for FAQ-SS with all variables aggregated identically,
/// faqw(ϕ) = fhtw(H). Checked on the triangle and on C5.
#[test]
fn proposition_5_12_faqw_equals_fhtw() {
    // Triangle.
    let tri = QueryShape {
        seq: vec![(Var(0), SUM), (Var(1), SUM), (Var(2), SUM)],
        edges: vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[1, 2])],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    let r = faqw_exact(&tri, 100).unwrap();
    assert!((r.width - 1.5).abs() < 1e-9);

    // C5: fhtw = 2 (ρ* of the largest induced U-set along the best ordering).
    let c5 = QueryShape {
        seq: (0..5).map(|i| (Var(i), SUM)).collect(),
        edges: vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 3]), vs(&[3, 4]), vs(&[4, 0])],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    let r = faqw_exact(&c5, 100_000).unwrap();
    let h = c5.hypergraph();
    let fhtw = faq::hypergraph::ordering::fhtw(&h, 16).width;
    assert!((r.width - fhtw).abs() < 1e-9, "faqw {} vs fhtw {}", r.width, fhtw);
}

/// §6.1's extended example: interleavings of factorized components belong to
/// EVO and share the LinEx width (the CWE completeness statement).
#[test]
fn section_6_1_component_interleavings() {
    let shape = QueryShape {
        seq: vec![(Var(1), SUM), (Var(2), SUM), (Var(3), MAX), (Var(4), MAX), (Var(5), SUM)],
        edges: vec![vs(&[1, 5]), vs(&[2, 5]), vs(&[1, 3]), vs(&[2, 4])],
        mul_idempotent: false,
        closed_ops: Default::default(),
    };
    let base = faqw_exact(&shape, 100_000).unwrap();
    for perm in [[5u32, 1, 3, 2, 4], [5, 2, 4, 1, 3]] {
        let pi = vorder(&perm);
        assert!(is_equivalent_ordering(&shape, &pi), "{perm:?}");
        let w = faqw_of_ordering(&shape, &pi).unwrap();
        assert!(
            (w - base.width).abs() < 1e-9,
            "interleaving {perm:?} width {w} vs optimal {}",
            base.width
        );
    }
}
