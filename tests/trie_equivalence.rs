//! Property tests: the columnar trie index is an exact, drop-in equivalent of
//! the sorted listing representation.
//!
//! Three layers of evidence over random factors and queries:
//!
//! 1. **Structure** — depth-first trie-cursor enumeration visits exactly the
//!    listing's rows, in order, ending at the right row indices;
//! 2. **Conditional queries** — trie seeks ([`faq::factor::TrieLevel`] lub)
//!    and range-restricted root views agree with the listing's
//!    `seek_column`/`prefix_range` oracle at every depth, and `Factor::get`
//!    agrees with a linear scan;
//! 3. **Joins** — InsideOut outputs are bit-identical between the listing and
//!    trie join kernels across the counting, max-tropical, and boolean
//!    semirings for thread counts {1, 2, 4}, at identical seek counts;
//! 4. **Seek kernels** — the galloping/block-search `lub_from` of the default
//!    [`faq::factor::VecStorage`] matches the `partition_point` oracle on
//!    adversarial windows (empty, singleton, all-equal, head-sample boundary
//!    sizes 63/64/65) for every hint, and hint-carrying cursor seek sequences
//!    match the stateless listing oracle probe for probe;
//! 5. **Spilled storage** — file-chunked ([`faq::factor::SpillConfig`])
//!    inputs produce bit-identical join outputs to the same factors on the
//!    heap across semirings and thread counts, for chunk sizes 1 / C−1 / C /
//!    C+1 (rows straddling every boundary alignment), at identical 1-thread
//!    seek counts.

use faq::core::{insideout_par, insideout_par_with_order, ExecPolicy, FaqQuery, JoinRep, VarAgg};
use faq::factor::{Domains, Factor, LevelStorage, SpillConfig, TrieCursor, VecStorage};
use faq::hypergraph::Var;
use faq::semiring::{AggDomain, BoolDomain, CountDomain, MaxPlus, SingleSemiringDomain};
use proptest::prelude::*;

const DOM: u32 = 4;

/// Build an arity-3 factor over `DOM³` from a support/value bitmap.
fn factor3(cells: &[u32]) -> Factor<u64> {
    let tuples: Vec<(Vec<u32>, u64)> = cells
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0)
        .map(|(i, &x)| {
            let i = i as u32;
            (vec![i / (DOM * DOM), (i / DOM) % DOM, i % DOM], x as u64)
        })
        .collect();
    Factor::new(vec![Var(0), Var(1), Var(2)], tuples).unwrap()
}

/// Depth-first enumeration through a trie cursor: every `(row, row_index)`
/// reachable below the cursor's current position, in lexicographic order.
fn dfs(cur: &mut TrieCursor<'_>, prefix: &mut Vec<u32>, out: &mut Vec<(Vec<u32>, usize)>) {
    if cur.at_leaf() {
        out.push((prefix.clone(), cur.row()));
        return;
    }
    let mut value = cur.seek(0);
    while let Some(x) = value {
        cur.open(x);
        prefix.push(x);
        dfs(cur, prefix, out);
        prefix.pop();
        cur.up();
        value = cur.next();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cursor enumeration (open/up/seek/next) visits exactly the listing.
    #[test]
    fn cursor_enumerates_the_listing(
        cells in proptest::collection::vec(0u32..3, (DOM * DOM * DOM) as usize),
    ) {
        let f = factor3(&cells);
        let mut got = Vec::new();
        dfs(&mut TrieCursor::new(f.trie()), &mut Vec::new(), &mut got);
        let expect: Vec<(Vec<u32>, usize)> =
            (0..f.len()).map(|i| (f.row(i).to_vec(), i)).collect();
        prop_assert_eq!(got, expect);
    }

    /// Trie seeks match the listing's `seek_column` oracle along random
    /// descents, and `Factor::get` matches a linear scan.
    #[test]
    fn seeks_match_listing_oracle(
        cells in proptest::collection::vec(0u32..2, (DOM * DOM * DOM) as usize),
        probes in proptest::collection::vec(0u32..(DOM * DOM * DOM + 7), 24),
    ) {
        let f = factor3(&cells);
        for &p in &probes {
            // Decode the probe into a descent prefix and a seek bound.
            let tuple = [p / (DOM * DOM) % DOM, (p / DOM) % DOM, p % DOM];
            let bound = p % (DOM + 2); // may exceed the domain
            let depth = (p as usize) % 3;

            // Listing descent (reference): prefix_range per column.
            let mut range = (0usize, f.len());
            let mut alive = true;
            for (d, &value) in tuple.iter().enumerate().take(depth) {
                range = f.prefix_range(range, d, value);
                if range.0 == range.1 {
                    alive = false;
                    break;
                }
            }
            // Trie descent: find per level.
            let mut cur = TrieCursor::new(f.trie());
            let mut trie_alive = true;
            for &value in tuple.iter().take(depth) {
                match cur.seek(value) {
                    Some(v) if v == value => cur.open(v),
                    _ => {
                        trie_alive = false;
                        break;
                    }
                }
            }
            prop_assert_eq!(alive, trie_alive, "descent to {:?}", &tuple[..depth]);
            if alive {
                prop_assert_eq!(
                    f.seek_column(range, depth, bound),
                    cur.seek(bound),
                    "seek {} at depth {} under {:?}", bound, depth, &tuple[..depth]
                );
            }

            // Point lookups.
            let expect = f.iter().find(|(r, _)| *r == tuple.as_slice()).map(|(_, v)| v);
            prop_assert_eq!(f.get(&tuple), expect);
        }
    }

    /// Range-restricted root views see exactly the listing rows whose first
    /// column lies in the range.
    #[test]
    fn range_views_match_filtered_listing(
        cells in proptest::collection::vec(0u32..2, (DOM * DOM * DOM) as usize),
        lo in 0u32..DOM + 1,
        width in 0u32..DOM + 1,
    ) {
        let f = factor3(&cells);
        let hi = lo + width;
        let view = f.trie().view((lo, hi));
        let expect: Vec<Vec<u32>> = f
            .iter()
            .filter(|(r, _)| lo <= r[0] && r[0] < hi)
            .map(|(r, _)| r.to_vec())
            .collect();
        prop_assert_eq!(view.num_rows(), expect.len());
        let mut got = Vec::new();
        dfs(&mut view.cursor(), &mut Vec::new(), &mut got);
        let got_rows: Vec<Vec<u32>> = got.into_iter().map(|(r, _)| r).collect();
        prop_assert_eq!(got_rows, expect);
    }
}

/// Sorted value arrays with adversarial shapes for the seek kernel: empty,
/// singleton, all-equal runs, and sizes straddling the head-sample stride
/// (63/64/65) and the block width.
fn kernel_values() -> impl Strategy<Value = Vec<u32>> {
    (0usize..5, proptest::collection::btree_set(0u32..1_000, 1..131usize), 0u32..60, 1usize..131)
        .prop_map(|(kind, set, v, n)| {
            let sorted: Vec<u32> = set.into_iter().collect();
            match kind {
                0 => Vec::new(),
                1 => vec![v],
                2 => vec![v; n], // all-equal run (sorted, not distinct)
                3 => {
                    // Head-sample boundary size, padded with an ascending
                    // tail if the drawn set came up short.
                    let target = [63usize, 64, 65, 127, 128, 129][n % 6];
                    let mut xs = sorted;
                    while xs.len() < target {
                        let next = xs.last().map_or(0, |&x| x + 1);
                        xs.push(next);
                    }
                    xs.truncate(target);
                    xs
                }
                _ => sorted,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The branch-free galloping kernel is bit-identical to the
    /// `partition_point` oracle on every window, for every hint — valid,
    /// stale, or absent. One probe = one seek under both kernels, so results
    /// agree at identical seek counts by construction.
    #[test]
    fn gallop_kernel_matches_partition_point_oracle(
        values in kernel_values(),
        probes in proptest::collection::vec(
            (0usize..140, 0usize..140, 0usize..150, 0u32..1_100),
            1..40,
        ),
    ) {
        let offsets: Vec<usize> = (0..=values.len()).collect();
        let storage = VecStorage::from_parts(values.clone(), offsets.clone(), offsets);
        for &(a, b, h, bound) in &probes {
            let n = values.len();
            let (lo, hi) = if a.min(n) <= b.min(n) {
                (a.min(n), b.min(n))
            } else {
                (b.min(n), a.min(n))
            };
            // Draws past 140 stand in for "no hint".
            let hint = if h >= 140 { usize::MAX } else { h.min(n) };
            let want = lo + values[lo..hi].partition_point(|&v| v < bound);
            prop_assert_eq!(
                storage.lub_from((lo, hi), hint, bound),
                want,
                "n={} lo={} hi={} hint={} bound={}", n, lo, hi, hint, bound
            );
        }
    }

    /// A hint-carrying cursor fed an arbitrary (not necessarily monotone)
    /// bound sequence answers every probe exactly like the stateless listing
    /// oracle — the gallop hint is an accelerator, never a semantic.
    #[test]
    fn hinted_seek_sequences_match_the_stateless_oracle(
        cells in proptest::collection::vec(0u32..2, (DOM * DOM * DOM) as usize),
        bounds in proptest::collection::vec(0u32..DOM + 3, 1..32),
    ) {
        let f = factor3(&cells);
        let mut cur = TrieCursor::new(f.trie());
        for &b in &bounds {
            prop_assert_eq!(
                cur.seek(b),
                f.seek_column((0, f.len()), 0, b),
                "bound {}", b
            );
        }
    }
}

/// Thread counts under test for the join-equivalence layer.
const THREADS: [usize; 3] = [1, 2, 4];

/// Evaluate under both representations for every thread count and assert the
/// outputs are bit-identical (listing 1-thread is the reference).
fn assert_rep_equivalent<D: AggDomain + Sync>(q: &FaqQuery<D>) {
    let reference =
        insideout_par(q, &ExecPolicy::sequential().min_chunk_rows(1).rep(JoinRep::Listing))
            .unwrap();
    for threads in THREADS {
        let mut seeks: Option<u64> = None;
        for rep in [JoinRep::Listing, JoinRep::Trie] {
            let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(1).rep(rep);
            let out = insideout_par(q, &policy).unwrap();
            assert_eq!(
                out.factor, reference.factor,
                "diverged under rep={rep:?} threads={threads}"
            );
            // Sequentially, both kernels drive the same leapfrog loop over
            // the same full-range windows, so their seek counts must agree
            // exactly — kernel swaps change the cost per seek, never the
            // number of seeks. (Chunked runs slice the root windows
            // per-representation, so counts are only pinned at 1 thread.)
            if threads == 1 {
                let total = out.stats.total_seeks();
                match seeks {
                    None => seeks = Some(total),
                    Some(s) => assert_eq!(
                        s, total,
                        "seek counts diverged under rep={rep:?} threads={threads}"
                    ),
                }
            }
        }
    }
}

/// Decode a support bitmap into factor tuples over `(a, b)`.
fn pairs_factor<E: Clone + PartialEq + std::fmt::Debug + Send + Sync>(
    a: u32,
    b: u32,
    support: &[u32],
    mut value_at: impl FnMut(usize) -> E,
) -> Factor<E> {
    let tuples: Vec<(Vec<u32>, E)> = support
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0)
        .map(|(i, _)| (vec![i as u32 / DOM, i as u32 % DOM], value_at(i)))
        .collect();
    Factor::new(vec![Var(a), Var(b)], tuples).unwrap()
}

/// The triangle-shaped query skeleton shared by the three families.
fn skeleton(
    free: usize,
    aggs: &[usize],
    pick: impl Fn(usize) -> VarAgg,
) -> (Vec<Var>, Vec<(Var, VarAgg)>) {
    let free_vars: Vec<Var> = (0..free as u32).map(Var).collect();
    let bound: Vec<(Var, VarAgg)> = (free..3).map(|i| (Var(i as u32), pick(aggs[i]))).collect();
    (free_vars, bound)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counting semiring: sum / max / product aggregate mixes.
    #[test]
    fn counting_listing_equals_trie(
        s01 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..3, 3),
        free in 0usize..3,
    ) {
        let f01 = pairs_factor(0, 1, &s01, |i| s01[i] as u64);
        let f12 = pairs_factor(1, 2, &s12, |i| s12[i] as u64);
        let f02 = pairs_factor(0, 2, &s02, |i| s02[i] as u64);
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(CountDomain::SUM),
            1 => VarAgg::Semiring(CountDomain::MAX),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            CountDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12, f02],
        ).unwrap();
        assert_rep_equivalent(&q);
    }

    /// Max-tropical semiring on an f64 carrier: bit-identity, not tolerance.
    #[test]
    fn max_tropical_listing_equals_trie(
        s01 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..2, 3),
        free in 0usize..3,
    ) {
        let val = |s: &[u32]| {
            let s = s.to_vec();
            move |i: usize| s[i] as f64 * 0.25
        };
        let f01 = pairs_factor(0, 1, &s01, val(&s01));
        let f12 = pairs_factor(1, 2, &s12, val(&s12));
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(SingleSemiringDomain::<MaxPlus>::OP),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            SingleSemiringDomain::new(MaxPlus),
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12],
        ).unwrap();
        assert_rep_equivalent(&q);
    }

    /// Boolean semiring: ∃ / ∀ quantifier mixes.
    #[test]
    fn boolean_listing_equals_trie(
        s01 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..2, (DOM * DOM) as usize),
        aggs in proptest::collection::vec(0usize..2, 3),
        free in 0usize..3,
    ) {
        let f01 = pairs_factor(0, 1, &s01, |_| true);
        let f12 = pairs_factor(1, 2, &s12, |_| true);
        let f02 = pairs_factor(0, 2, &s02, |_| true);
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(BoolDomain::OR),
            _ => VarAgg::Product,
        });
        let q = FaqQuery::new(
            BoolDomain,
            Domains::uniform(3, DOM),
            free_vars,
            bound,
            vec![f01, f12, f02],
        ).unwrap();
        assert_rep_equivalent(&q);
    }
}

/// Larger single-shot case: enough rows that real chunking engages under
/// both representations, with a free variable so the guard phase and final
/// output join run too.
#[test]
fn large_query_listing_equals_trie_under_chunking() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut r = StdRng::seed_from_u64(90210);
    let d = 48u32;
    let mut mk = |a: u32, b: u32| {
        let mut tuples = std::collections::BTreeMap::new();
        for _ in 0..2500 {
            tuples.insert(vec![r.gen_range(0..d), r.gen_range(0..d)], r.gen_range(1..5u64));
        }
        Factor::new(vec![Var(a), Var(b)], tuples.into_iter().collect()).unwrap()
    };
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(3, d),
        vec![Var(0)],
        vec![
            (Var(1), VarAgg::Semiring(CountDomain::SUM)),
            (Var(2), VarAgg::Semiring(CountDomain::MAX)),
        ],
        vec![mk(0, 1), mk(1, 2), mk(0, 2)],
    )
    .unwrap();
    assert_rep_equivalent(&q);
}

/// A spill geometry with `chunk_rows` rows per chunk and a deliberately tiny
/// pinned window, so even these small factors page chunks in and out.
fn tiny_spill(chunk_rows: usize) -> SpillConfig {
    SpillConfig {
        chunk_rows,
        level_chunk_entries: chunk_rows,
        window_chunks: 2,
        ..Default::default()
    }
}

/// Evaluate `q` along the fixed ordering `(0, 1, 2)` — every triangle factor
/// schema is a subsequence of it, so spilled inputs join without realignment
/// — and assert the output is bit-identical to `reference` for thread counts
/// {1, 2, 4}. Returns the 1-thread seek count.
fn eval_triangle_order<D: AggDomain + Sync>(
    q: &FaqQuery<D>,
    reference: Option<&Factor<D::E>>,
) -> (Factor<D::E>, u64) {
    let mut one_thread = None;
    for threads in THREADS {
        let policy = ExecPolicy::sequential().threads(threads).min_chunk_rows(1);
        let out = insideout_par_with_order(q, &[Var(0), Var(1), Var(2)], &policy).unwrap();
        if let Some(r) = reference {
            assert_eq!(&out.factor, r, "diverged at threads={threads}");
        }
        if threads == 1 {
            one_thread = Some((out.factor, out.stats.total_seeks()));
        }
    }
    one_thread.expect("THREADS contains 1")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// File-chunked inputs are a drop-in for the heap listing on the join
    /// path: any subset of the triangle's factors may spill, under chunk
    /// sizes 1, C−1, C, C+1 (C = 4, so 16-row factors straddle every
    /// boundary alignment), and outputs stay bit-identical across thread
    /// counts with 1-thread seek counts unchanged.
    #[test]
    fn spilled_counting_inputs_equal_mem_inputs(
        s01 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        s02 in proptest::collection::vec(0u32..3, (DOM * DOM) as usize),
        chunk_pick in 0usize..4,
        spill_mask in 1u32..8,
        aggs in proptest::collection::vec(0usize..2, 3),
        free in 0usize..3,
    ) {
        let chunk_rows = [1usize, 3, 4, 5][chunk_pick];
        let mem = vec![
            pairs_factor(0, 1, &s01, |i| s01[i] as u64),
            pairs_factor(1, 2, &s12, |i| s12[i] as u64),
            pairs_factor(0, 2, &s02, |i| s02[i] as u64),
        ];
        let spilled: Vec<Factor<u64>> = mem
            .iter()
            .enumerate()
            .map(|(i, f)| {
                if spill_mask & (1 << i) != 0 && !f.is_empty() {
                    f.to_spilled(tiny_spill(chunk_rows))
                } else {
                    f.clone()
                }
            })
            .collect();
        let (free_vars, bound) = skeleton(free, &aggs, |a| match a {
            0 => VarAgg::Semiring(CountDomain::SUM),
            _ => VarAgg::Semiring(CountDomain::MAX),
        });
        let mk = |factors| {
            FaqQuery::new(
                CountDomain,
                Domains::uniform(3, DOM),
                free_vars.clone(),
                bound.clone(),
                factors,
            )
            .unwrap()
        };
        let (reference, mem_seeks) = eval_triangle_order(&mk(mem), None);
        let (_, spill_seeks) = eval_triangle_order(&mk(spilled), Some(&reference));
        // Seeks are counted in the join layer, above the storage backend, and
        // the file-chunked `lub_from` answers exactly like `VecStorage` — so
        // sequential seek counts must not move at all.
        prop_assert_eq!(mem_seeks, spill_seeks);
    }

    /// Same drop-in claim on the max-tropical f64 carrier (bit-identity of
    /// the float payloads through the encode/decode roundtrip, not
    /// tolerance).
    #[test]
    fn spilled_tropical_inputs_equal_mem_inputs(
        s01 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        s12 in proptest::collection::vec(0u32..4, (DOM * DOM) as usize),
        chunk_pick in 0usize..4,
        free in 0usize..3,
    ) {
        let val = |s: &[u32]| {
            let s = s.to_vec();
            move |i: usize| s[i] as f64 * 0.25
        };
        let chunk_rows = [1usize, 3, 4, 5][chunk_pick];
        let f01 = pairs_factor(0, 1, &s01, val(&s01));
        let f12 = pairs_factor(1, 2, &s12, val(&s12));
        let spill = |f: &Factor<f64>| {
            if f.is_empty() { f.clone() } else { f.to_spilled(tiny_spill(chunk_rows)) }
        };
        let (f01s, f12s) = (spill(&f01), spill(&f12));
        let (free_vars, bound) = skeleton(free, &[0, 0, 0], |_| {
            VarAgg::Semiring(SingleSemiringDomain::<MaxPlus>::OP)
        });
        let mk = |factors| {
            FaqQuery::new(
                SingleSemiringDomain::new(MaxPlus),
                Domains::uniform(3, DOM),
                free_vars.clone(),
                bound.clone(),
                factors,
            )
            .unwrap()
        };
        let (reference, _) = eval_triangle_order(&mk(vec![f01, f12]), None);
        eval_triangle_order(&mk(vec![f01s, f12s]), Some(&reference));
    }
}
