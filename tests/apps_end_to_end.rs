//! End-to-end application tests spanning crates, via the facade only.

use faq::apps::{cq, csp, joins, matrix, pgm, qcq};
use faq::cnf;
use faq::hypergraph::Var;
use faq::semiring::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn triangle_counts_match_edge_iterator() {
    // Ground truth: count ordered triangles by enumeration over edges.
    let mut rng = StdRng::seed_from_u64(55);
    for _ in 0..5 {
        let n = 12u32;
        let edges = joins::random_graph(n, 40, &mut rng);
        let eset: std::collections::BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        let mut expect = 0u64;
        for &(a, b) in &edges {
            for c in 0..n {
                if eset.contains(&(b, c)) && eset.contains(&(a, c)) {
                    expect += 1;
                }
            }
        }
        let q = joins::triangle_query(&edges, n);
        assert_eq!(q.count().unwrap(), expect);
    }
}

#[test]
fn yannakakis_on_acyclic_joins_touches_little() {
    // An acyclic path join with an empty end relation: the guard phase must
    // keep the output join from exploring dead branches.
    let n = 50u32;
    let full: Vec<(u32, u32)> = (0..n).flat_map(|i| [(i, (i + 1) % n), (i, (i + 2) % n)]).collect();
    let mut q = joins::path_query(&full, n, 3);
    // Empty the last relation: output is empty.
    q.relations[2] = joins::Relation::new(q.relations[2].vars.clone(), vec![]);
    let out = q.evaluate().unwrap();
    assert_eq!(out.factor.len(), 0);
    // The final output join should visit no nodes beyond the roots since the
    // guards are empty.
    let oj = out.stats.output_join.unwrap();
    assert!(oj.matches == 0);
}

#[test]
fn cq_counts_are_consistent_across_formulations() {
    let mut rng = StdRng::seed_from_u64(77);
    let d = 3u32;
    let mk = |rng: &mut StdRng, a: u32, b: u32| {
        let mut tuples = Vec::new();
        for _ in 0..10 {
            tuples.push(vec![rng.gen_range(0..d), rng.gen_range(0..d)]);
        }
        tuples.sort();
        tuples.dedup();
        cq::Atom { vars: vec![Var(a), Var(b)], tuples }
    };
    for _ in 0..10 {
        let q = cq::ConjunctiveQuery {
            domains: faq::factor::Domains::uniform(4, d),
            free: vec![Var(0)],
            exists: vec![Var(1), Var(2), Var(3)],
            atoms: vec![mk(&mut rng, 0, 1), mk(&mut rng, 1, 2), mk(&mut rng, 2, 3)],
        };
        let by_count = q.count_answers().unwrap();
        let by_eval = q.evaluate().unwrap().len() as u64;
        let by_naive = q.count_answers_naive().unwrap();
        assert_eq!(by_count, by_eval);
        assert_eq!(by_count, by_naive);
    }
}

#[test]
fn qcq_quantifier_order_matters() {
    // ∀x0 ∃x1 E vs ∃x1 ∀x0 E on a relation where they differ:
    // E = {(0,0),(1,1)}: ∀∃ holds, ∃∀ fails.
    let e = cq::Atom { vars: vec![Var(0), Var(1)], tuples: vec![vec![0, 0], vec![1, 1]] };
    let fe = qcq::QuantifiedCq {
        domains: faq::factor::Domains::uniform(2, 2),
        free: vec![],
        prefix: vec![(Var(0), qcq::Quantifier::ForAll), (Var(1), qcq::Quantifier::Exists)],
        atoms: vec![e.clone()],
    };
    assert!(fe.holds().unwrap());
    let ef = qcq::QuantifiedCq {
        domains: faq::factor::Domains::uniform(2, 2),
        free: vec![],
        prefix: vec![(Var(1), qcq::Quantifier::Exists), (Var(0), qcq::Quantifier::ForAll)],
        atoms: vec![e],
    };
    assert!(!ef.holds().unwrap());
}

#[test]
fn pgm_conditioned_map_is_consistent() {
    let mut rng = StdRng::seed_from_u64(6);
    let model = pgm::random_grid(2, 3, 3, &mut rng);
    let (assignment, map_val) = model.map_assignment().unwrap();
    // Brute-force the best assignment and compare values.
    let brute = model.map_value_naive().unwrap();
    assert!((map_val - brute).abs() < 1e-9 * (1.0 + brute));
    assert!((model.score(&assignment) - brute).abs() < 1e-9 * (1.0 + brute));
}

#[test]
fn dft_inverse_roundtrip() {
    // DFT then inverse DFT (conjugate trick) recovers the input.
    let m = 6usize;
    let n = 1usize << m;
    let mut rng = StdRng::seed_from_u64(8);
    let input: Vec<Complex64> = (0..n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let spectrum = matrix::dft_faq(2, m, &input).unwrap();
    // IDFT(x) = conj(DFT(conj(x))) / N.
    let conj: Vec<Complex64> = spectrum.iter().map(|z| z.conj()).collect();
    let back = matrix::dft_faq(2, m, &conj).unwrap();
    for (orig, b) in input.iter().zip(&back) {
        let recovered = Complex64::new(b.re / n as f64, -b.im / n as f64);
        assert!(recovered.approx_eq(orig, 1e-6), "{recovered:?} vs {orig:?}");
    }
}

#[test]
fn mcm_all_orderings_agree() {
    let mut rng = StdRng::seed_from_u64(9);
    let chain = matrix::MatrixChain {
        matrices: vec![
            matrix::Matrix::random(3, 5, &mut rng),
            matrix::Matrix::random(5, 2, &mut rng),
            matrix::Matrix::random(2, 6, &mut rng),
            matrix::Matrix::random(6, 4, &mut rng),
        ],
    };
    let reference = chain.evaluate_left_to_right();
    assert!(chain.evaluate().unwrap().max_diff(&reference) < 1e-9);
    assert!(chain.evaluate_dp().max_diff(&reference) < 1e-9);
    let order = chain.dp_variable_ordering();
    assert!(chain.evaluate_insideout(&order).unwrap().max_diff(&reference) < 1e-9);
}

#[test]
fn coloring_and_permanent_sanity() {
    // Petersen graph is 3-colorable but not 2-colorable.
    let petersen: Vec<(u32, u32)> = vec![
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 0),
        (5, 7),
        (7, 9),
        (9, 6),
        (6, 8),
        (8, 5),
        (0, 5),
        (1, 6),
        (2, 7),
        (3, 8),
        (4, 9),
    ];
    assert!(!csp::is_k_colorable(10, &petersen, 2).unwrap());
    assert!(csp::is_k_colorable(10, &petersen, 3).unwrap());
    // Permanent of a permutation matrix is 1.
    let p = vec![vec![0, 1, 0], vec![0, 0, 1], vec![1, 0, 0]];
    assert_eq!(csp::permanent(&p).unwrap(), 1);
}

#[test]
fn sharp_sat_agrees_with_faq_counting() {
    // Encode a small interval CNF both as a weighted-clause instance and as a
    // FAQ over the counting domain (listing blow-up) and compare counts.
    let mut rng = StdRng::seed_from_u64(10);
    for _ in 0..10 {
        let n = 6u32;
        let f = cnf::gen::random_interval_cnf(n, 8, 3, &mut rng);
        let weighted = cnf::count_beta_acyclic(&f).unwrap();
        let brute = cnf::brute_force_count(&f) as f64;
        assert!((weighted - brute).abs() < 1e-6 * (1.0 + brute));
        // And through the generic FAQ engine: clauses as listing factors.
        let count = cnf_as_faq_count(&f);
        assert!((count as f64 - brute).abs() < 0.5, "{count} vs {brute}");
    }
}

/// #SAT via the generic FAQ engine with clause factors in listing form
/// (exponential in clause width — fine for width ≤ 3).
fn cnf_as_faq_count(f: &cnf::Cnf) -> u64 {
    use faq::core::{insideout, FaqQuery, VarAgg};
    use faq::factor::{Domains, Factor};
    use faq::semiring::CountDomain;
    let mut factors = Vec::new();
    for clause in &f.clauses {
        let vars: Vec<Var> = clause.vars().into_iter().collect();
        let sizes = vec![2u32; vars.len()];
        let fac = Factor::dense(
            vars.clone(),
            &sizes,
            |t| {
                let sat = clause.lits().iter().any(|l| {
                    let pos = vars.iter().position(|v| *v == l.var).unwrap();
                    (t[pos] == 1) == l.positive
                });
                u64::from(sat)
            },
            |&x| x == 0,
        )
        .unwrap();
        factors.push(fac);
    }
    let q = FaqQuery::new(
        CountDomain,
        Domains::uniform(f.num_vars as usize, 2),
        vec![],
        (0..f.num_vars).map(|i| (Var(i), VarAgg::Semiring(CountDomain::SUM))).collect(),
        factors,
    )
    .unwrap();
    insideout(&q).unwrap().scalar().copied().unwrap_or(0)
}
