//! Theorem 8.1 shape checks: InsideOut's cost measured in semiring
//! *operations* (the oracle-model currency of §8.1) rather than time.

use faq::core::{insideout, insideout_with_order, FaqQuery, VarAgg};
use faq::factor::{Domains, Factor};
use faq::hypergraph::Var;
use faq::semiring::{CountDomain, InstrumentedDomain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn chain_query(
    len: usize,
    dom: u32,
    tuples_per_factor: usize,
    seed: u64,
) -> FaqQuery<InstrumentedDomain<CountDomain>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (domain, _) = InstrumentedDomain::new(CountDomain);
    let mut factors = Vec::new();
    for i in 0..len - 1 {
        let mut tuples = std::collections::BTreeSet::new();
        for _ in 0..tuples_per_factor {
            tuples.insert(vec![rng.gen_range(0..dom), rng.gen_range(0..dom)]);
        }
        factors.push(
            Factor::new(
                vec![Var(i as u32), Var(i as u32 + 1)],
                tuples.into_iter().map(|t| (t, 1u64)).collect(),
            )
            .unwrap(),
        );
    }
    FaqQuery::new(
        domain,
        Domains::uniform(len, dom),
        vec![],
        (0..len as u32).map(|i| (Var(i), VarAgg::Semiring(CountDomain::SUM))).collect(),
        factors,
    )
    .unwrap()
}

/// On an acyclic chain, operation counts grow linearly with the input size
/// (the Theorem 8.1 bound at fhtw = 1), not with the exponential-size output
/// space.
#[test]
fn chain_ops_scale_linearly() {
    let mut totals = Vec::new();
    for &n_tuples in &[100usize, 200, 400] {
        let q = chain_query(6, 64, n_tuples, 7);
        let counters = q.domain.clone();
        let (_, handle) = InstrumentedDomain::new(CountDomain);
        // Re-wrap to get a handle tied to the query's own domain.
        let _ = counters;
        let _ = handle;
        // Use a fresh instrumented query where we retain the handle:
        let (domain, ops) = InstrumentedDomain::new(CountDomain);
        let q2 = FaqQuery::new(
            domain,
            q.domains.clone(),
            q.free.clone(),
            q.bound.clone(),
            q.factors.clone(),
        )
        .unwrap();
        insideout(&q2).unwrap();
        totals.push((n_tuples as f64, (ops.adds() + ops.muls()) as f64));
    }
    // Linear growth: quadrupling the input should not even triple-square ops.
    let ratio = totals[2].1 / totals[0].1;
    assert!(ratio < 8.0, "ops grew superlinearly: {totals:?} (ratio {ratio})");
    assert!(totals[2].1 > totals[0].1, "ops should grow with input size");
}

/// The Example 5.6 gap measured in operations: the good ordering does
/// asymptotically fewer multiplications than the input ordering.
#[test]
fn example_5_6_ops_gap() {
    use faq::semiring::RealDomain;
    // Rebuild the bench workload inline at two sizes over an instrumented
    // real domain.
    let build = |n: u32, seed: u64| {
        let mut r = StdRng::seed_from_u64(seed);
        let v = Var;
        let dom3 = 2u32;
        let mut pairs = |a: u32, b: u32| {
            let mut tuples = std::collections::BTreeSet::new();
            for _ in 0..n {
                tuples.insert(vec![r.gen_range(0..n), r.gen_range(0..n)]);
            }
            Factor::new(vec![v(a), v(b)], tuples.into_iter().map(|t| (t, 1.0f64)).collect())
                .unwrap()
        };
        let p15 = pairs(1, 5);
        let p25 = pairs(2, 5);
        let mut triples = |a: u32, b: u32, c: u32| {
            let mut tuples = std::collections::BTreeSet::new();
            for _ in 0..n {
                let xa = r.gen_range(0..n);
                let xb = r.gen_range(0..n);
                for x3 in 0..dom3 {
                    tuples.insert(vec![xa, x3, xb]);
                }
            }
            Factor::new(vec![v(a), v(b), v(c)], tuples.into_iter().map(|t| (t, 1.0f64)).collect())
                .unwrap()
        };
        let p134 = triples(1, 3, 4);
        let p236 = triples(2, 3, 6);
        let (domain, ops) = InstrumentedDomain::new(RealDomain);
        let q = FaqQuery::new(
            domain,
            Domains::new(vec![2, n, n, dom3, n, n, n]),
            vec![],
            vec![
                (v(1), VarAgg::Semiring(RealDomain::MAX)),
                (v(2), VarAgg::Semiring(RealDomain::MAX)),
                (v(3), VarAgg::Product),
                (v(4), VarAgg::Semiring(RealDomain::SUM)),
                (v(5), VarAgg::Semiring(RealDomain::MAX)),
                (v(6), VarAgg::Semiring(RealDomain::MAX)),
            ],
            vec![p15, p25, p134, p236],
        )
        .unwrap();
        (q, ops)
    };

    let input_order: Vec<Var> = (1..=6).map(Var).collect();
    let good_order: Vec<Var> = [5u32, 1, 2, 3, 4, 6].iter().map(|&i| Var(i)).collect();

    // Theorem 8.1 splits the cost into (i) conditional queries to the factor
    // oracles — the search work, where the O(N²)-vs-O(N) gap lives — and
    // (ii)/(iii) the ⊕/⊗ counts, which are output-proportional and similar
    // under both orderings on this sparse instance.
    let mut seek_gaps = Vec::new();
    for n in [200u32, 400] {
        let (q, ops) = build(n, 3);
        let bad_run = insideout_with_order(&q, &input_order).unwrap();
        let bad_ops = ops.adds() + ops.muls();
        ops.reset();
        let good_run = insideout_with_order(&q, &good_order).unwrap();
        let good_ops = ops.adds() + ops.muls();
        assert!(good_ops > 0 && bad_ops > 0);
        let bad_seeks = bad_run.stats.total_seeks() as f64;
        let good_seeks = good_run.stats.total_seeks() as f64;
        assert!(bad_seeks > good_seeks, "n={n}: {bad_seeks} vs {good_seeks}");
        seek_gaps.push(bad_seeks / good_seeks);
    }
    // The conditional-query gap must widen with N (quadratic vs linear).
    assert!(seek_gaps[1] > seek_gaps[0] * 1.4, "ordering seek gap did not widen: {seek_gaps:?}");
}
